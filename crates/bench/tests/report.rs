//! Tests of the structured reporting layer: JSON round-trips and
//! escaping, the schema shape of a real (CI-sized) `fig5` report, and
//! `bench_all`-style baseline regression detection against a synthetic
//! slow baseline.

use bench::report::{
    compare, render_text, BenchResults, ExperimentReport, Json, Measurement, SCHEMA_VERSION,
};
use bench::{experiments, RunConfig};

// ---------------------------------------------------------------------------
// JSON serializer/parser
// ---------------------------------------------------------------------------

#[test]
fn json_round_trips_structures() {
    let doc = Json::Obj(vec![
        ("null".into(), Json::Null),
        ("bools".into(), Json::Arr(vec![Json::Bool(true), Json::Bool(false)])),
        ("num".into(), Json::Num(-12.5)),
        ("int".into(), Json::Num(4_194_304.0)),
        ("big".into(), Json::Num(9_007_199_254_740_991.0)), // 2^53 - 1, exact
        ("str".into(), Json::Str("plain".into())),
        ("nested".into(), Json::Obj(vec![("empty_arr".into(), Json::Arr(vec![]))])),
        ("empty_obj".into(), Json::Obj(vec![])),
    ]);
    for text in [doc.render_pretty(), doc.render_compact()] {
        assert_eq!(Json::parse(&text).expect("own output parses"), doc, "round-trip of {text}");
    }
}

#[test]
fn json_escapes_and_unescapes_strings() {
    let nasty = "quote\" backslash\\ newline\n tab\t cr\r bell\u{07} nul\u{0} unicode→é 👍";
    let doc = Json::Obj(vec![(nasty.to_string(), Json::Str(nasty.to_string()))]);
    let text = doc.render_compact();
    // Control characters must be escaped, never emitted raw.
    assert!(!text.contains('\n') && !text.contains('\u{07}') && !text.contains('\u{0}'));
    assert!(text.contains("\\n") && text.contains("\\\"") && text.contains("\\\\"));
    assert_eq!(Json::parse(&text).expect("escaped output parses"), doc);
}

#[test]
fn json_parses_foreign_escapes() {
    // Escapes another producer might emit but our writer does not:
    // \/ and \uXXXX (including a surrogate pair).
    let parsed = Json::parse(r#"{"s": "a\/b é 👍", "e": 1.5e3}"#).unwrap();
    assert_eq!(parsed.get("s").and_then(Json::as_str), Some("a/b é 👍"));
    assert_eq!(parsed.get("e").and_then(Json::as_f64), Some(1500.0));
}

#[test]
fn json_nonfinite_numbers_degrade_to_null() {
    let doc = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY), Json::Num(1.0)]);
    assert_eq!(doc.render_compact(), "[null,null,1]");
}

#[test]
fn json_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\" 1}",
        "tru",
        "\"unterminated",
        "1 2",
        "{\"a\":1} trailing",
        "\"bad \\q escape\"",
        "\"unpaired \\ud800 surrogate\"",
    ] {
        assert!(Json::parse(bad).is_err(), "accepted malformed input {bad:?}");
    }
}

#[test]
fn json_number_formatting_is_integer_clean() {
    // Counters serialize without a fractional tail, and floats survive
    // a round-trip bit-exactly.
    assert_eq!(Json::Num(31742.0).render_compact(), "31742");
    let v = 2502400.123456789_f64;
    let back = Json::parse(&Json::Num(v).render_compact()).unwrap();
    assert_eq!(back.as_f64(), Some(v));
}

// ---------------------------------------------------------------------------
// Report schema shape on a real experiment
// ---------------------------------------------------------------------------

/// Runs the real fig5 experiment at smoke-test scale and checks the
/// shape every consumer of `BENCH_results.json` relies on.
#[test]
fn fig5_report_has_the_documented_schema_shape() {
    let cfg = RunConfig::smoke_test();
    let report = experiments::fig5(&cfg);
    assert_eq!(report.id, "fig5");
    assert!(!report.measurements.is_empty());

    let results = BenchResults::collect(cfg.knobs(), vec![report.clone()]);
    let text = results.to_json().render_pretty();
    let doc = Json::parse(&text).expect("emitted document parses");

    assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(SCHEMA_VERSION as f64));
    assert!(doc.get("git_rev").and_then(Json::as_str).is_some());
    let knobs = doc.get("knobs").expect("knobs object");
    assert_eq!(knobs.get("SMOKE").and_then(Json::as_str), Some("1"));

    let experiments = doc.get("experiments").and_then(Json::as_arr).expect("experiments array");
    assert_eq!(experiments.len(), 1);
    let fig5 = &experiments[0];
    assert_eq!(fig5.get("id").and_then(Json::as_str), Some("fig5"));
    assert!(fig5.get("title").and_then(Json::as_str).is_some());
    assert!(fig5.get("axes").and_then(Json::as_str).is_some());

    let ms = fig5.get("measurements").and_then(Json::as_arr).expect("measurements array");
    assert_eq!(ms.len(), report.measurements.len());
    for m in ms {
        let label = m.get("label").and_then(Json::as_str).expect("label");
        for key in [
            "structure",
            "threads",
            "size",
            "latency_ns",
            "median_throughput",
            "baseline_throughput",
            "ratio",
        ] {
            assert!(m.get(key).is_some(), "fig5 row {label} lacks {key}");
        }
        let median = m.get("median_throughput").and_then(Json::as_f64).unwrap();
        assert!(median > 0.0, "row {label} measured nothing");
        let repeats = m.get("repeat_throughputs").and_then(Json::as_arr).expect("repeats");
        assert_eq!(repeats.len(), cfg.repeats);
        let flush = m.get("flush").expect("flush stats");
        let syncs = flush.get("sync_batches").and_then(Json::as_f64).unwrap();
        let fences = flush.get("fences").and_then(Json::as_f64).unwrap();
        assert!(syncs > 0.0, "a durable run must fence ({label})");
        assert!(fences >= syncs, "sync batches are a subset of fences ({label})");
        let ratio = m.get("ratio").and_then(Json::as_f64).unwrap();
        let base = m.get("baseline_throughput").and_then(Json::as_f64).unwrap();
        assert!((ratio - median / base).abs() < 1e-9, "ratio is median/baseline ({label})");
    }

    // The human-readable rendering is a view of the same report: every
    // label appears in it.
    let rendered = render_text(&report);
    for m in &report.measurements {
        assert!(rendered.contains(&m.label), "render_text dropped {}", m.label);
    }
}

/// Runs the real fig12 shard sweep at smoke-test scale: one row per
/// shard count from the `SHARDS` knob, each with a throughput, a
/// `shards` metric, and a parallel-recovery time.
#[test]
fn fig12_report_sweeps_the_configured_shard_counts() {
    let cfg = RunConfig::smoke_test();
    let report = experiments::fig12_shards(&cfg);
    assert_eq!(report.id, "fig12_shards");
    let want: Vec<usize> = cfg.shard_counts();
    assert_eq!(want, vec![1, 2], "smoke_test sweeps shard counts {{1, 2}}");
    assert_eq!(report.measurements.len(), want.len());
    for (m, n) in report.measurements.iter().zip(&want) {
        assert_eq!(m.label, format!("shards={n} range={}", m.size.unwrap()));
        let metrics: std::collections::HashMap<&str, f64> =
            m.metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        assert_eq!(metrics["shards"], *n as f64);
        assert!(m.median_throughput.unwrap() > 0.0, "shards={n} measured nothing");
        assert_eq!(m.repeat_throughputs.len(), cfg.repeats);
        assert!(metrics["recovery_ms"] >= 0.0);
        let flush = m.flush.expect("durable run reports flush stats");
        assert!(flush.fences > 0, "a durable run must fence");
    }
}

/// Runs the real allocator microbenchmark at smoke-test scale: one row
/// per (alloc size, threads, tlab) cell, TLAB counters populated on the
/// `tlab=1` rows and zeroed on the `tlab=0` rows.
#[test]
fn alloc_micro_report_covers_the_tlab_matrix() {
    let cfg = RunConfig::smoke_test();
    let report = experiments::alloc_micro(&cfg);
    assert_eq!(report.id, "alloc_micro");
    assert_eq!(report.measurements.len(), 8, "2 sizes x 2 thread counts x 2 tlab settings");
    for m in &report.measurements {
        let metrics: std::collections::HashMap<&str, f64> =
            m.metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        assert!(m.median_throughput.unwrap() > 0.0, "{} measured nothing", m.label);
        assert_eq!(m.repeat_throughputs.len(), cfg.repeats);
        let flush = m.flush.expect("durable run reports flush stats");
        assert!(flush.fences > 0, "a durable run must fence ({})", m.label);
        if m.label.ends_with("tlab=1") {
            assert!(metrics["tlab_refills"] > 0.0, "{} never refilled a lease", m.label);
            assert!(metrics["tlab_hit_rate"] > 0.5, "{} bump path barely used", m.label);
        } else {
            assert_eq!(metrics["tlab_refills"], 0.0, "{} must not lease", m.label);
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline regression detection
// ---------------------------------------------------------------------------

fn results_with_throughputs(pairs: &[(&str, f64)]) -> Json {
    let mut report = ExperimentReport::new("fig5", "t", "a");
    for &(label, tput) in pairs {
        report
            .measurements
            .push(Measurement { median_throughput: Some(tput), ..Measurement::new(label) });
    }
    // A throughput-free experiment (recovery times) that must never
    // participate in the comparison.
    let mut fig10 = ExperimentReport::new("fig10", "t", "a");
    fig10.measurements.push(Measurement::new("ht size=128").metric("recovery_ns", 1e6));
    let results = BenchResults::collect(vec![], vec![report, fig10]);
    Json::parse(&results.to_json().render_pretty()).expect("own output parses")
}

#[test]
fn baseline_coverage_counts_matched_rows_only() {
    use bench::report::baseline_coverage;
    let baseline = results_with_throughputs(&[("a", 1000.0), ("retired", 500.0)]);
    let current = results_with_throughputs(&[("a", 900.0), ("brand-new", 2000.0)]);
    // Throughput rows only: "a" matches, "brand-new" doesn't; the
    // throughput-free fig10 row never counts on either side.
    assert_eq!(baseline_coverage(&current, &baseline), (1, 2));
}

#[test]
fn baseline_comparison_flags_a_50pct_regression() {
    // Synthetic slow current run vs fast baseline: one row halved (50%
    // drop), one row mildly slower (10%), one row improved.
    let baseline = results_with_throughputs(&[("a", 1000.0), ("b", 1000.0), ("c", 1000.0)]);
    let current = results_with_throughputs(&[("a", 500.0), ("b", 900.0), ("c", 1500.0)]);
    let regs = compare(&current, &baseline, 25.0);
    assert_eq!(regs.len(), 1, "only the halved row regresses: {regs:?}");
    assert_eq!(regs[0].experiment, "fig5");
    assert_eq!(regs[0].label, "a");
    assert!((regs[0].drop_pct - 50.0).abs() < 1e-9);
    let shown = regs[0].to_string();
    assert!(shown.contains("fig5/a") && shown.contains("50.0% drop"), "display: {shown}");
}

#[test]
fn baseline_comparison_ignores_unmatched_and_throughput_free_rows() {
    let baseline = results_with_throughputs(&[("a", 1000.0), ("retired", 9999.0)]);
    let current = results_with_throughputs(&[("a", 1000.0), ("brand-new", 1.0)]);
    assert!(compare(&current, &baseline, 25.0).is_empty());
    // Identical documents never regress, at any threshold.
    assert!(compare(&baseline, &baseline, 0.0).is_empty());
}

#[test]
fn regressions_sort_worst_first() {
    let baseline = results_with_throughputs(&[("a", 1000.0), ("b", 1000.0)]);
    let current = results_with_throughputs(&[("a", 600.0), ("b", 100.0)]);
    let regs = compare(&current, &baseline, 25.0);
    assert_eq!(regs.len(), 2);
    assert_eq!(regs[0].label, "b", "worst drop first");
}

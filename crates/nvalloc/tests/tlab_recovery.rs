//! Exhaustive crash-point enumeration at the allocator level: a fixed
//! alloc/retire script runs once to count every persist-relevant event
//! (clwbs, fences, TLAB lease publishes/retires), then replays once per
//! event index with a crash there. With no data structure on top,
//! *nothing* is reachable — so recovery must reclaim every
//! durably-allocated slot at every index, proving the TLAB lease words
//! bound the leak scan exactly (no page with durable bits escapes the
//! APT ∪ lease scan set).

use std::sync::Arc;

use nvalloc::{apt, NvDomain};
use pmem::{CrashEvent, CrashPlan, Mode, PmemPool, PoolBuilder};

fn new_pool() -> Arc<PmemPool> {
    PoolBuilder::new(2 << 20).mode(Mode::CrashSim).build()
}

/// A deterministic single-threaded script exercising every TLAB
/// transition: refills in two size classes, retires with generation
/// seals (which park leases), immediate deallocs, and the drop-time
/// retire.
fn run_script(pool: &Arc<PmemPool>, plan: &Arc<CrashPlan>) {
    let domain = NvDomain::create(Arc::clone(pool));
    pool.install_crash_plan(Arc::clone(plan));
    let mut ctx = domain.register();
    let mut live: Vec<usize> = Vec::new();
    for round in 0..4usize {
        ctx.begin_op();
        for i in 0..9usize {
            let size = if (round + i) % 2 == 0 { 64 } else { 256 };
            live.push(ctx.alloc(size).unwrap());
        }
        if round % 2 == 1 {
            for _ in 0..6 {
                let a = live.swap_remove(live.len() / 2);
                ctx.retire(a);
            }
            // Seal explicitly: parks the leases (retire crash points)
            // well before GENERATION_SIZE retirements accumulate.
            ctx.seal_generation();
        }
        if round == 2 {
            let a = live.pop().unwrap();
            ctx.dealloc_unlinked(a);
        }
        ctx.end_op();
    }
    ctx.drain_all();
    drop(ctx); // drop-time retire of the remaining leases
    pool.clear_crash_plan();
}

#[test]
fn lease_is_fully_reclaimed_after_crash_at_every_event_index() {
    // Phase 1: count.
    let pool = new_pool();
    let count_plan = CrashPlan::count_only();
    run_script(&pool, &count_plan);
    let total = count_plan.events();
    assert!(total > 0, "script must generate crash points");
    assert!(
        count_plan.kind_count(CrashEvent::TlabLease) >= 4,
        "script must exercise lease publish and retire transitions"
    );

    // Phase 2: crash at every index (plus the post-completion point).
    for k in 0..=total {
        let pool = new_pool();
        let image: Arc<std::sync::Mutex<Option<Vec<u64>>>> = Arc::new(std::sync::Mutex::new(None));
        let plan = CrashPlan::fire_at(k, {
            let pool = Arc::clone(&pool);
            let image = Arc::clone(&image);
            Box::new(move || {
                *image.lock().unwrap() = Some(pool.capture_crash_image().expect("crash-sim"));
            })
        });
        run_script(&pool, &plan);
        if k < total {
            assert!(plan.fired(), "replay diverged from the count phase at index {k}");
        }
        let img = image
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| pool.capture_crash_image().expect("crash-sim"));
        // SAFETY: the script has finished; no other thread uses the pool.
        unsafe { pool.crash_to_image(&img).expect("crash-sim") };

        let domain = NvDomain::attach(Arc::clone(&pool));
        let report = domain.recover_leaks(|_| false);
        let leaked = domain.count_unreachable(|_| false);
        assert_eq!(
            leaked, 0,
            "crash at event {k}/{total}: {leaked} slot(s) escaped the bounded leak scan \
             (recovered {} from {} pages)",
            report.leaks_freed, report.pages_scanned
        );
        assert_eq!(
            apt::lease_pages(&pool),
            Vec::<usize>::new(),
            "crash at event {k}: recovery must clear every lease word"
        );
    }
}

//! Durable **thread-local allocation buffers** (TLABs).
//!
//! The paper's allocation-locality argument (§5.1) says a thread should
//! almost always be allocating from memory it already owns. The base
//! allocator gets part of the way there with per-thread current pages,
//! but every allocation still probes the shared page bitmap and the
//! active-page-table index. A TLAB removes both from the hot path: the
//! thread *leases* a contiguous run of free slots from a page and then
//! privately bumps through the run — one compare-free pointer increment
//! per allocation, exactly the `ThreadLocalAllocBuffer` shape used by
//! modern GC runtimes.
//!
//! # Durability
//!
//! A lease is published **once**, durably, before the first slot of the
//! run is marked allocated: the per-thread, per-class *lease word* lives
//! in the tail of the thread's APT row (see [`crate::apt`]) and encodes
//! `(page, start, end)`. Recovery unions the lease pages into the
//! active-page scan set, so a crash mid-lease costs at most one extra
//! page scan per thread per class — a *bounded* leak scan, never a heap
//! walk. The word is written only at refill and retire, never on the
//! per-allocation bump path.
//!
//! # Lifecycle
//!
//! * **Refill** (`ThreadCtx::refill_tlab`): park the previous lease,
//!   acquire a page, pick its longest free run, durably publish the
//!   lease word, then bump privately.
//! * **Park/retire**: on `seal_generation`, thread drop, OOM pressure
//!   and mode switches the unused remainder is returned to the shared
//!   reusable list and the lease word is lazily cleared (a stale lease
//!   word is safe — it only widens the recovery scan).
//!
//! Both transitions emit a [`pmem::CrashEvent::TlabLease`] crash point
//! so the crashtest matrix enumerates them.

/// Volatile bump state of one size class's lease.
///
/// `page == 0` means "no lease". `next..end` are the slot indices still
/// available to bump through; slots are only marked in the page bitmap
/// as they are handed out, so the un-bumped remainder stays visibly free
/// to the rest of the heap.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Tlab {
    /// Leased page address (0 = no active lease).
    pub page: usize,
    /// Next slot index to hand out.
    pub next: usize,
    /// One past the last leased slot index.
    pub end: usize,
}

impl Tlab {
    /// No active lease.
    pub const EMPTY: Tlab = Tlab { page: 0, next: 0, end: 0 };

    /// Whether the lease has slots left to bump through.
    #[inline]
    pub fn has_room(&self) -> bool {
        self.page != 0 && self.next < self.end
    }
}

/// Packs a lease into its durable word: the page address (4 KiB aligned,
/// so its low 12 bits are zero) carries `start` and `end` in those free
/// bits (6 bits each — slot indices never exceed 62). A zero word means
/// "no lease".
#[inline]
pub fn encode_lease(page: usize, start: usize, end: usize) -> u64 {
    debug_assert_eq!(page & 0xFFF, 0, "page must be 4 KiB aligned");
    debug_assert!(page != 0 && start <= 63 && end <= 63 && start <= end);
    page as u64 | ((start as u64) << 6) | end as u64
}

/// The leased page recorded in a lease word (0 when no lease).
#[inline]
pub fn lease_page(word: u64) -> usize {
    (word & !0xFFF) as usize
}

/// The first leased slot index recorded in a lease word.
#[inline]
pub fn lease_start(word: u64) -> usize {
    ((word >> 6) & 0x3F) as usize
}

/// One past the last leased slot index recorded in a lease word.
#[inline]
pub fn lease_end(word: u64) -> usize {
    (word & 0x3F) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_word_round_trips() {
        for &(page, start, end) in
            &[(0x10_000usize, 0usize, 63usize), (0x7F_F000, 5, 5), (0x123_4000, 17, 62)]
        {
            let w = encode_lease(page, start, end);
            assert_eq!(lease_page(w), page);
            assert_eq!(lease_start(w), start);
            assert_eq!(lease_end(w), end);
        }
    }

    #[test]
    fn zero_word_means_no_lease() {
        assert_eq!(lease_page(0), 0);
        assert!(!Tlab::EMPTY.has_room());
    }

    #[test]
    fn exhausted_lease_has_no_room() {
        let t = Tlab { page: 0x10_000, next: 7, end: 7 };
        assert!(!t.has_room());
        let t = Tlab { page: 0x10_000, next: 3, end: 7 };
        assert!(t.has_room());
    }
}

//! **NV-epochs**: durable memory management for log-free concurrent data
//! structures (§5 of David et al., *Log-Free Concurrent Data Structures*,
//! USENIX ATC 2018).
//!
//! The traditional way to avoid persistent memory leaks is to log every
//! allocate/link and unlink/free intention — one awaited NVRAM write per
//! update. NV-epochs replaces that with coarse-grained bookkeeping:
//!
//! * a slab [`heap`] whose per-page allocation bitmaps are written back
//!   *lazily* (the data structure's own fence covers them),
//! * classic [`epoch`]-based reclamation to decide when unlinked nodes can
//!   be freed, and
//! * a durable per-thread [`apt`] (active page table) recording which
//!   *pages* may contain in-flight allocations or unlinks. Only an APT
//!   **miss** waits for a durable write; hits — the overwhelming majority,
//!   thanks to locality (Figure 9a) — do no durable bookkeeping at all.
//!
//! After a crash, recovery ([`NvDomain::recover_leaks`]) scans just the
//! active pages and frees every allocated-but-unreachable node, using a
//! reachability oracle supplied by the data structure (§5.5).

pub mod apt;
pub mod domain;
pub mod epoch;
pub mod heap;
pub mod tlab;

pub use apt::{ActivePageTable, Activity, AptStats, APT_CAP, APT_TRIM_THRESHOLD};
pub use domain::{MemMode, NvDomain, RecoveryReport, ThreadCtx, GENERATION_SIZE};
pub use epoch::{EpochManager, EpochVector, MAX_THREADS};
pub use heap::{
    class_of, page_of, slots_in_class, NvHeap, OutOfMemory, PageHeader, CLASSES, N_CLASSES,
    PAGE_SIZE,
};
pub use tlab::Tlab;

//! Epoch-based memory reclamation (§5.2 of the paper).
//!
//! Each registered thread owns an epoch counter. The counter is incremented
//! when the thread starts a data-structure operation and again when it
//! finishes, so an **odd** value means "currently inside an operation".
//! Unlinked nodes are grouped into *generations*; a generation can be freed
//! once every thread that was active (odd epoch) when the generation was
//! sealed has since advanced — at that point no live operation can still
//! hold a reference to any node in the generation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Maximum number of threads that may register with a domain.
///
/// A fixed bound keeps epoch vectors flat arrays (one cache line per
/// thread); the paper's evaluation never exceeds 8 threads.
pub const MAX_THREADS: usize = 64;

/// One cache-line-padded epoch counter, to avoid false sharing between
/// threads hammering their own epochs.
#[repr(align(128))]
struct PaddedEpoch(AtomicU64);

/// The global epoch table of a domain.
pub struct EpochManager {
    epochs: Box<[PaddedEpoch]>,
    registered: AtomicUsize,
}

impl Default for EpochManager {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochManager {
    /// Creates a manager with all epochs at zero (idle).
    pub fn new() -> Self {
        let mut v = Vec::with_capacity(MAX_THREADS);
        v.resize_with(MAX_THREADS, || PaddedEpoch(AtomicU64::new(0)));
        Self { epochs: v.into_boxed_slice(), registered: AtomicUsize::new(0) }
    }

    /// Reserves a thread slot, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_THREADS`] threads register.
    pub fn register(&self) -> usize {
        let tid = self.registered.fetch_add(1, Ordering::AcqRel);
        assert!(tid < MAX_THREADS, "too many threads registered (max {MAX_THREADS})");
        tid
    }

    /// Number of registered threads.
    pub fn registered(&self) -> usize {
        self.registered.load(Ordering::Acquire).min(MAX_THREADS)
    }

    /// Current epoch of thread `tid`.
    #[inline]
    pub fn epoch_of(&self, tid: usize) -> u64 {
        self.epochs[tid].0.load(Ordering::Acquire)
    }

    /// Marks the start of an operation by `tid` (epoch becomes odd).
    #[inline]
    pub fn begin_op(&self, tid: usize) -> u64 {
        let e = self.epochs[tid].0.load(Ordering::Relaxed) + 1;
        debug_assert!(e % 2 == 1, "begin_op while already active");
        self.epochs[tid].0.store(e, Ordering::SeqCst);
        e
    }

    /// Marks the end of an operation by `tid` (epoch becomes even).
    #[inline]
    pub fn end_op(&self, tid: usize) -> u64 {
        let e = self.epochs[tid].0.load(Ordering::Relaxed) + 1;
        debug_assert!(e % 2 == 0, "end_op while not active");
        self.epochs[tid].0.store(e, Ordering::SeqCst);
        e
    }

    /// Snapshots the epochs of all registered threads.
    pub fn snapshot(&self) -> EpochVector {
        let n = self.registered();
        EpochVector((0..n).map(|t| self.epoch_of(t)).collect())
    }

    /// Whether every thread that was mid-operation in `snap` has since
    /// advanced, i.e. whether nodes unlinked before `snap` are safe to
    /// free.
    pub fn has_advanced(&self, snap: &EpochVector) -> bool {
        snap.0.iter().enumerate().all(|(t, &e)| e % 2 == 0 || self.epoch_of(t) > e)
    }

    /// Resets all epochs to zero. Only valid when no thread is active —
    /// used when re-attaching after a simulated crash.
    pub fn reset(&self) {
        for e in self.epochs.iter() {
            e.0.store(0, Ordering::SeqCst);
        }
        self.registered.store(0, Ordering::SeqCst);
    }
}

/// A snapshot of per-thread epochs taken when a generation was sealed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochVector(pub Vec<u64>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_alternate_parity() {
        let m = EpochManager::new();
        let t = m.register();
        assert_eq!(m.epoch_of(t), 0);
        assert_eq!(m.begin_op(t), 1);
        assert_eq!(m.end_op(t), 2);
        assert_eq!(m.begin_op(t), 3);
    }

    #[test]
    fn idle_threads_do_not_block_reclamation() {
        let m = EpochManager::new();
        let a = m.register();
        let b = m.register();
        m.begin_op(a);
        m.end_op(a); // a idle at epoch 2
        m.begin_op(b);
        let snap = m.snapshot(); // a=2 (even), b=1 (odd)
        assert!(!m.has_advanced(&snap), "b still active");
        m.end_op(b);
        assert!(m.has_advanced(&snap), "b advanced past snapshot");
    }

    #[test]
    fn active_thread_blocks_until_it_moves() {
        let m = EpochManager::new();
        let a = m.register();
        m.begin_op(a);
        let snap = m.snapshot();
        assert!(!m.has_advanced(&snap));
        m.end_op(a);
        assert!(m.has_advanced(&snap));
    }

    #[test]
    fn empty_snapshot_always_advanced() {
        let m = EpochManager::new();
        let snap = m.snapshot();
        assert!(m.has_advanced(&snap));
    }

    #[test]
    fn reset_clears_registration() {
        let m = EpochManager::new();
        m.register();
        m.begin_op(0);
        m.reset();
        assert_eq!(m.registered(), 0);
        assert_eq!(m.epoch_of(0), 0);
    }
}

//! The durable **active page table** (APT, §5.4).
//!
//! Each thread keeps a durable set of *active* allocator pages: pages it
//! has recently allocated from or unlinked nodes of. Inserting a page is
//! the **only** operation in the whole memory-management scheme that must
//! wait for a durable write — and thanks to allocation/reclamation
//! locality it is rare (Figure 9a measures the hit rate). Everything else
//! (allocation bitmaps, removals) is written back lazily.
//!
//! On recovery, the union of all threads' active pages bounds the set of
//! pages that can possibly contain leaked nodes, so the leak scan touches
//! a handful of pages instead of the whole heap.
//!
//! # Durable layout
//!
//! The APT region sits right after the heap meta page. Each thread owns a
//! 1 KiB row:
//!
//! ```text
//! +0    flags   u64   bit 0 = ALL_ACTIVE (overflow fallback)
//! +8    entry 0 u64   page address, 0 = empty
//! ...
//! +8+8*(CAP-1)  entry CAP-1
//! (tail) 2 intent slots (Figure 9b baseline), then one TLAB lease word
//!        per size class (see `tlab`)
//! ```
//!
//! Per-entry epoch metadata ("largest epoch at which this thread allocated
//! / unlinked memory of this page") is volatile — it is only needed for
//! trimming, never for recovery (§5.4).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pmem::{Flusher, PmemPool};

use crate::epoch::MAX_THREADS;
use crate::heap::{N_CLASSES, PAGE_SIZE};
use crate::tlab;

/// Maximum entries per thread row. The paper pre-allocates table entries
/// and notes tables "usually do not grow beyond a certain size" (§5.4);
/// the delete hit rates of Figure 9a imply a table large enough to cover
/// the whole churn working set of medium structures, so rows are sized
/// generously (the crossover where hit rates decline scales with this).
pub const APT_CAP: usize = 1000;
/// Trim is attempted once a row exceeds this many live entries (§6.3
/// trims at 16; with generous rows we trim lazily at a fraction of
/// capacity, which preserves the paper's "attempt to trim" semantics
/// while keeping the hot pages resident).
pub const APT_TRIM_THRESHOLD: usize = 750;
/// Bytes per thread row (flags word + entries + intent slots, padded to
/// two pages).
pub const APT_ROW_BYTES: usize = 8192;
/// Total bytes of the APT region.
pub const APT_REGION_BYTES: usize = MAX_THREADS * APT_ROW_BYTES;

const ALL_ACTIVE: u64 = 1;

/// Address of thread `tid`'s row.
fn row_addr(pool: &PmemPool, tid: usize) -> usize {
    debug_assert!(tid < MAX_THREADS);
    pool.heap_start() + PAGE_SIZE + tid * APT_ROW_BYTES
}

/// Address of thread `tid`'s durable intent slot (`which`: 0 = alloc,
/// 1 = unlink). Used by the traditional intent-log mode (Figure 9b
/// baseline); lives in the unused tail of the APT row.
pub(crate) fn intent_slot(pool: &PmemPool, tid: usize, which: usize) -> usize {
    debug_assert!(which < 2);
    row_addr(pool, tid) + 8 + APT_CAP * 8 + which * 8
}

/// Address of thread `tid`'s durable TLAB lease word for `class` (see
/// [`crate::tlab`]): one u64 per size class, right after the intent
/// slots in the row tail. Recovery unions the recorded pages into the
/// active-page scan set via [`lease_pages`].
pub(crate) fn lease_slot(pool: &PmemPool, tid: usize, class: usize) -> usize {
    debug_assert!(class < N_CLASSES);
    row_addr(pool, tid) + 8 + APT_CAP * 8 + 16 + class * 8
}

/// Reads every thread's durable TLAB lease words and returns the pages
/// they cover (deduplicated). Part of the recovery scan set: a crash
/// mid-lease leaves at most these pages uncovered by the APT entries.
pub fn lease_pages(pool: &PmemPool) -> Vec<usize> {
    let mut pages = Vec::new();
    for tid in 0..MAX_THREADS {
        for class in 0..N_CLASSES {
            let w = pool.atomic_u64(lease_slot(pool, tid, class)).load(Ordering::Acquire);
            let page = tlab::lease_page(w);
            if page != 0 {
                pages.push(page);
            }
        }
    }
    pages.sort_unstable();
    pages.dedup();
    pages
}

/// Why a page is being marked active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// The thread is about to allocate a node from the page.
    Alloc,
    /// The thread unlinked (retired) a node belonging to the page.
    Unlink,
}

/// Hit/miss counters for Figure 9a.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AptStats {
    /// Allocations whose page was already active (no durable write).
    pub alloc_hits: u64,
    /// Allocations that had to durably insert an APT entry.
    pub alloc_misses: u64,
    /// Unlinks whose page was already active.
    pub unlink_hits: u64,
    /// Unlinks that had to durably insert an APT entry.
    pub unlink_misses: u64,
    /// Allocations served by bumping an existing TLAB lease (no bitmap
    /// probe, no APT lookup).
    pub tlab_hits: u64,
    /// Allocations that had to refill the TLAB first.
    pub tlab_misses: u64,
    /// TLAB lease refills (durable lease-word publishes).
    pub tlab_refills: u64,
}

impl AptStats {
    /// Hit fraction for allocations (1.0 when no allocations happened).
    pub fn alloc_hit_rate(&self) -> f64 {
        let total = self.alloc_hits + self.alloc_misses;
        if total == 0 {
            1.0
        } else {
            self.alloc_hits as f64 / total as f64
        }
    }

    /// Hit fraction for unlinks (1.0 when no unlinks happened).
    pub fn unlink_hit_rate(&self) -> f64 {
        let total = self.unlink_hits + self.unlink_misses;
        if total == 0 {
            1.0
        } else {
            self.unlink_hits as f64 / total as f64
        }
    }

    /// Fraction of allocations served from an existing TLAB lease (1.0
    /// when no TLAB allocations happened).
    pub fn tlab_hit_rate(&self) -> f64 {
        let total = self.tlab_hits + self.tlab_misses;
        if total == 0 {
            1.0
        } else {
            self.tlab_hits as f64 / total as f64
        }
    }
}

/// Volatile per-entry metadata.
#[derive(Debug, Default, Clone, Copy)]
struct SlotMeta {
    /// Cached page address (0 = slot empty). Mirrors the durable entry.
    page: usize,
    /// Thread epoch of the most recent allocation from this page.
    last_alloc_epoch: u64,
    /// Thread epoch of the most recent unlink of a node in this page.
    last_unlink_epoch: u64,
}

/// A thread's handle on its active page table row.
pub struct ActivePageTable {
    pool: Arc<PmemPool>,
    row: usize,
    meta: Box<[SlotMeta]>,
    /// Volatile page -> slot index map (the durable row is the plain
    /// array; the index only accelerates the hit path).
    index: std::collections::HashMap<usize, usize>,
    live: usize,
    stats: AptStats,
}

impl ActivePageTable {
    /// Opens (and clears) thread `tid`'s row. Used on fresh registration;
    /// recovery reads rows directly via [`active_pages`].
    pub fn open(pool: Arc<PmemPool>, tid: usize, flusher: &mut Flusher) -> Self {
        let row = row_addr(&pool, tid);
        clear_row(&pool, row, flusher);
        Self {
            pool,
            row,
            meta: vec![SlotMeta::default(); APT_CAP].into_boxed_slice(),
            index: std::collections::HashMap::with_capacity(APT_CAP),
            live: 0,
            stats: AptStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether the table would benefit from a trim.
    pub fn wants_trim(&self) -> bool {
        self.live > APT_TRIM_THRESHOLD
    }

    /// Accumulated hit/miss counters.
    pub fn stats(&self) -> AptStats {
        self.stats
    }

    /// Resets the counters (after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = AptStats::default();
    }

    /// Ensures `page` is durably recorded as active before the caller
    /// proceeds. Returns `true` on a hit (no durable write was needed).
    ///
    /// On a miss, the entry is written and **synced** — this is the only
    /// waiting durable write in the scheme (Figure 4). If the row is full
    /// the caller should [`Self::trim`] and retry; if it is still full,
    /// [`Self::set_all_active`] is the safe fallback.
    pub fn ensure_active(
        &mut self,
        page: usize,
        why: Activity,
        cur_epoch: u64,
        flusher: &mut Flusher,
    ) -> Result<bool, TableFull> {
        debug_assert_eq!(page % PAGE_SIZE, 0);
        // Hit path: pure volatile work.
        if let Some(&i) = self.index.get(&page) {
            let m = &mut self.meta[i];
            match why {
                Activity::Alloc => {
                    m.last_alloc_epoch = cur_epoch;
                    self.stats.alloc_hits += 1;
                }
                Activity::Unlink => {
                    m.last_unlink_epoch = cur_epoch;
                    self.stats.unlink_hits += 1;
                }
            }
            return Ok(true);
        }
        // Miss: durably insert.
        let Some(i) = self.meta.iter().position(|m| m.page == 0) else {
            return Err(TableFull);
        };
        let entry_addr = self.row + 8 + i * 8;
        self.pool.atomic_u64(entry_addr).store(page as u64, Ordering::Release);
        flusher.persist(entry_addr, 8); // the one waiting write
        self.meta[i] = SlotMeta {
            page,
            last_alloc_epoch: if why == Activity::Alloc { cur_epoch } else { 0 },
            last_unlink_epoch: if why == Activity::Unlink { cur_epoch } else { 0 },
        };
        self.index.insert(page, i);
        self.live += 1;
        match why {
            Activity::Alloc => self.stats.alloc_misses += 1,
            Activity::Unlink => self.stats.unlink_misses += 1,
        }
        Ok(false)
    }

    /// Removes entries that are provably no longer active (§5.4):
    ///
    /// * the last allocation from the page happened in a finished
    ///   operation (`last_alloc_epoch < cur_epoch`), and
    /// * `unlinked_settled(page)` confirms every node this thread unlinked
    ///   from the page has been freed (reclamation caught up), and
    /// * the caller has already flushed any link cache it uses (so no
    ///   cached link refers to the page).
    ///
    /// Removals are written back without waiting — a stale *active* entry
    /// is safe, it only costs recovery time. Returns removed count.
    pub fn trim(
        &mut self,
        cur_epoch: u64,
        mut unlinked_settled: impl FnMut(usize) -> bool,
        flusher: &mut Flusher,
    ) -> usize {
        let mut removed = 0;
        for i in 0..APT_CAP {
            let m = self.meta[i];
            if m.page == 0 {
                continue;
            }
            let alloc_quiet = m.last_alloc_epoch < cur_epoch;
            if alloc_quiet && unlinked_settled(m.page) {
                let entry_addr = self.row + 8 + i * 8;
                self.pool.atomic_u64(entry_addr).store(0, Ordering::Release);
                flusher.clwb(entry_addr);
                self.index.remove(&m.page);
                self.meta[i] = SlotMeta::default();
                self.live -= 1;
                removed += 1;
            }
        }
        removed
    }

    /// Overflow fallback: durably mark *every* page as potentially active,
    /// degrading recovery to a full-heap scan but preserving safety.
    pub fn set_all_active(&mut self, flusher: &mut Flusher) {
        self.pool.atomic_u64(self.row).store(ALL_ACTIVE, Ordering::Release);
        flusher.persist(self.row, 8);
    }

    /// Pages currently live in this handle (volatile view, for tests).
    pub fn pages(&self) -> Vec<usize> {
        self.meta.iter().filter(|m| m.page != 0).map(|m| m.page).collect()
    }
}

/// The table had no free slot; trim and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "active page table row is full")
    }
}

impl std::error::Error for TableFull {}

fn clear_row(pool: &PmemPool, row: usize, flusher: &mut Flusher) {
    // Flags word + entries + the two intent slots + the TLAB lease words.
    let row_used = 8 + APT_CAP * 8 + 16 + N_CLASSES * 8;
    for off in (0..row_used).step_by(8) {
        pool.atomic_u64(row + off).store(0, Ordering::Release);
    }
    flusher.persist(row, row_used);
}

/// Reads the union of all threads' durable active pages *and* TLAB lease
/// pages — the recovery scan set. Returns `None` if any thread fell back
/// to ALL_ACTIVE (the caller must scan the whole heap).
pub fn active_pages(pool: &PmemPool) -> Option<Vec<usize>> {
    let mut pages = Vec::new();
    for tid in 0..MAX_THREADS {
        let row = row_addr(pool, tid);
        if pool.atomic_u64(row).load(Ordering::Acquire) & ALL_ACTIVE != 0 {
            return None;
        }
        for i in 0..APT_CAP {
            let p = pool.atomic_u64(row + 8 + i * 8).load(Ordering::Acquire) as usize;
            if p != 0 {
                pages.push(p);
            }
        }
    }
    pages.extend(lease_pages(pool));
    pages.sort_unstable();
    pages.dedup();
    Some(pages)
}

/// Durably clears every thread's row (end of recovery).
pub fn clear_all(pool: &PmemPool, flusher: &mut Flusher) {
    for tid in 0..MAX_THREADS {
        clear_row(pool, row_addr(pool, tid), flusher);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{Mode, PoolBuilder};

    fn setup() -> (Arc<PmemPool>, ActivePageTable, Flusher) {
        let pool = PoolBuilder::new(4 << 20).mode(Mode::CrashSim).build();
        let mut f = pool.flusher();
        let apt = ActivePageTable::open(Arc::clone(&pool), 0, &mut f);
        (pool, apt, f)
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let (_pool, mut apt, mut f) = setup();
        let page = 0x10_000;
        assert_eq!(apt.ensure_active(page, Activity::Alloc, 1, &mut f), Ok(false));
        assert_eq!(apt.ensure_active(page, Activity::Alloc, 3, &mut f), Ok(true));
        assert_eq!(apt.ensure_active(page, Activity::Unlink, 3, &mut f), Ok(true));
        let s = apt.stats();
        assert_eq!((s.alloc_hits, s.alloc_misses, s.unlink_hits), (1, 1, 1));
    }

    #[test]
    fn entries_survive_crash() {
        let (pool, mut apt, mut f) = setup();
        apt.ensure_active(0x10_000, Activity::Alloc, 1, &mut f).unwrap();
        apt.ensure_active(0x20_000, Activity::Unlink, 1, &mut f).unwrap();
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        let pages = active_pages(&pool).unwrap();
        assert_eq!(pages, vec![0x10_000, 0x20_000]);
    }

    #[test]
    fn trim_respects_epoch_and_settlement() {
        let (_pool, mut apt, mut f) = setup();
        apt.ensure_active(0x10_000, Activity::Alloc, 5, &mut f).unwrap();
        apt.ensure_active(0x20_000, Activity::Alloc, 5, &mut f).unwrap();
        // Same epoch: the allocating op is still running; nothing trims.
        assert_eq!(apt.trim(5, |_| true, &mut f), 0);
        // Epoch advanced, but 0x20_000 has unsettled unlinks.
        assert_eq!(apt.trim(6, |p| p != 0x20_000, &mut f), 1);
        assert_eq!(apt.pages(), vec![0x20_000]);
    }

    #[test]
    fn table_full_then_all_active_fallback() {
        let (pool, mut apt, mut f) = setup();
        for i in 0..APT_CAP {
            apt.ensure_active((i + 1) * PAGE_SIZE * 2, Activity::Alloc, 1, &mut f).unwrap();
        }
        // An odd page multiple cannot collide with the even ones above.
        assert_eq!(
            apt.ensure_active(PAGE_SIZE * 2_000_001, Activity::Alloc, 1, &mut f),
            Err(TableFull)
        );
        apt.set_all_active(&mut f);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert!(active_pages(&pool).is_none(), "ALL_ACTIVE forces full scan");
    }

    #[test]
    fn wants_trim_threshold() {
        let (_pool, mut apt, mut f) = setup();
        for i in 0..APT_TRIM_THRESHOLD {
            apt.ensure_active((i + 1) * PAGE_SIZE, Activity::Alloc, 1, &mut f).unwrap();
        }
        assert!(!apt.wants_trim());
        apt.ensure_active((APT_TRIM_THRESHOLD + 5) * PAGE_SIZE, Activity::Alloc, 1, &mut f)
            .unwrap();
        assert!(apt.wants_trim());
    }

    #[test]
    fn clear_all_empties_every_row() {
        let (pool, mut apt, mut f) = setup();
        apt.ensure_active(0x10_000, Activity::Alloc, 1, &mut f).unwrap();
        clear_all(&pool, &mut f);
        assert_eq!(active_pages(&pool).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn removal_is_lazy_but_insert_is_synced() {
        let (_pool, mut apt, mut f) = setup();
        let before = f.stats().sync_batches;
        apt.ensure_active(0x10_000, Activity::Alloc, 1, &mut f).unwrap();
        assert_eq!(f.stats().sync_batches, before + 1, "miss pays one sync");
        let before = f.stats().sync_batches;
        apt.trim(2, |_| true, &mut f);
        assert_eq!(f.stats().sync_batches, before, "trim does not fence");
    }
}

//! The persistent slab heap: fixed-size pages carved from the pool, each
//! serving one size class, with a durable per-page allocation bitmap.
//!
//! This is the "basic persistent allocator" interface the paper assumes
//! (§5.3): per-thread pages, durable metadata whose final write-back does
//! **not** need to be awaited (the data-structure fence or the reclamation
//! batch fence covers it), and a way to peek at the next address to be
//! allocated so the active-page check can run before the allocation.
//!
//! # Pool layout
//!
//! ```text
//! pool.heap_start()
//!   ├─ heap meta page   (durable bump pointer)
//!   ├─ APT region       (MAX_THREADS rows, see `apt` module)
//!   └─ data pages ...   (4 KiB each: 64 B header + slots)
//! ```
//!
//! # Page layout (header occupies the first cache line)
//!
//! ```text
//! +0   magic      u64   identifies an initialised page + its class
//! +8   slot_size  u64   bytes per slot
//! +16  bitmap     u64   bit i set = slot i allocated   (durable)
//! +24  .. 63      reserved
//! +64  slot 0, slot 1, ...
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pmem::{Flusher, PmemPool};

use crate::epoch::MAX_THREADS;

/// Size of an allocator page in bytes (the granularity tracked by the
/// active page table; §6.3 uses 4 KiB).
pub const PAGE_SIZE: usize = 4096;
/// Bytes reserved for the page header.
pub const PAGE_HEADER: usize = 64;
/// Slot size classes. Nodes are cache-aligned (§6.1), so classes are
/// multiples of 64 B; 256 B fits a 24-level skip-list tower.
pub const CLASSES: [usize; 4] = [64, 128, 192, 256];
/// Number of size classes.
pub const N_CLASSES: usize = CLASSES.len();

const PAGE_MAGIC: u64 = 0x4E56_5041_4745_0000; // "NVPAGE" + class in low bits
const REGION_MAGIC: u64 = 0x4E56_5245_4749_4F4E; // "NVREGION" header page

/// Returns the size class index for an allocation of `size` bytes.
///
/// # Panics
///
/// Panics if `size` exceeds the largest class.
#[inline]
pub fn class_of(size: usize) -> usize {
    CLASSES
        .iter()
        .position(|&c| size <= c)
        .unwrap_or_else(|| panic!("allocation of {size} B exceeds largest class"))
}

/// Number of slots in a page of class `class`.
#[inline]
pub fn slots_in_class(class: usize) -> usize {
    ((PAGE_SIZE - PAGE_HEADER) / CLASSES[class]).min(63)
}

/// Start address of the page containing `addr`.
#[inline]
pub fn page_of(addr: usize) -> usize {
    addr & !(PAGE_SIZE - 1)
}

/// Typed view of a page header living in persistent memory.
///
/// All fields are accessed atomically; the bitmap is shared between the
/// owning thread (allocations) and arbitrary threads (frees of reclaimed
/// nodes).
pub struct PageHeader;

impl PageHeader {
    #[inline]
    fn magic(pool: &PmemPool, page: usize) -> &AtomicU64 {
        pool.atomic_u64(page)
    }

    #[inline]
    fn slot_size(pool: &PmemPool, page: usize) -> &AtomicU64 {
        pool.atomic_u64(page + 8)
    }

    #[inline]
    pub(crate) fn bitmap(pool: &PmemPool, page: usize) -> &AtomicU64 {
        pool.atomic_u64(page + 16)
    }

    /// Initialises a fresh page for `class` and schedules its write-back
    /// (no fence; the caller's next sync covers it).
    pub fn init(pool: &PmemPool, page: usize, class: usize, flusher: &mut Flusher) {
        Self::slot_size(pool, page).store(CLASSES[class] as u64, Ordering::Relaxed);
        Self::bitmap(pool, page).store(0, Ordering::Relaxed);
        Self::magic(pool, page).store(PAGE_MAGIC | class as u64, Ordering::Release);
        flusher.clwb(page);
    }

    /// Reads the class of an initialised page, or `None` if the page
    /// header is not valid.
    pub fn read_class(pool: &PmemPool, page: usize) -> Option<usize> {
        let m = Self::magic(pool, page).load(Ordering::Acquire);
        if m & !0xFFFF == PAGE_MAGIC {
            let class = (m & 0xFFFF) as usize;
            (class < N_CLASSES).then_some(class)
        } else {
            None
        }
    }

    /// Address of slot `i` in `page` of class `class`.
    #[inline]
    pub fn slot_addr(page: usize, class: usize, i: usize) -> usize {
        page + PAGE_HEADER + i * CLASSES[class]
    }

    /// Slot index of `addr` within its page, given the page's class.
    #[inline]
    pub fn slot_index(addr: usize, class: usize) -> usize {
        (addr - page_of(addr) - PAGE_HEADER) / CLASSES[class]
    }

    /// Marks slot `i` allocated. Returns `false` if it was already
    /// allocated (contended with another thread).
    pub fn try_set(pool: &PmemPool, page: usize, i: usize) -> bool {
        let bm = Self::bitmap(pool, page);
        let bit = 1u64 << i;
        bm.fetch_or(bit, Ordering::AcqRel) & bit == 0
    }

    /// Clears slot `i` (free). Returns the previous bitmap value.
    pub fn clear(pool: &PmemPool, page: usize, i: usize) -> u64 {
        let bm = Self::bitmap(pool, page);
        bm.fetch_and(!(1u64 << i), Ordering::AcqRel)
    }

    /// Index of a free slot, if any.
    pub fn find_free(pool: &PmemPool, page: usize, class: usize) -> Option<usize> {
        let bm = Self::bitmap(pool, page).load(Ordering::Acquire);
        let n = slots_in_class(class);
        let free = !bm & ((1u64 << n) - 1);
        (free != 0).then(|| free.trailing_zeros() as usize)
    }

    /// Index of a free slot at or after `cursor`, falling back to the
    /// lowest free slot when everything from `cursor` on is taken.
    ///
    /// The cursor turns the owner thread's sequential fill of a page into
    /// O(1) next-free lookups instead of an O(slots) rescan from slot 0;
    /// because the fallback picks the lowest free slot, a caller that
    /// lowers its cursor on every local free observes exactly the
    /// lowest-free-first order of [`Self::find_free`] in single-threaded
    /// use.
    pub fn find_free_at(
        pool: &PmemPool,
        page: usize,
        class: usize,
        cursor: usize,
    ) -> Option<usize> {
        let bm = Self::bitmap(pool, page).load(Ordering::Acquire);
        let n = slots_in_class(class);
        let free = !bm & ((1u64 << n) - 1);
        if free == 0 {
            return None;
        }
        let ahead = free & !((1u64 << cursor.min(63)) - 1);
        let pick = if ahead != 0 { ahead } else { free };
        Some(pick.trailing_zeros() as usize)
    }

    /// Longest contiguous run of free slots, as `(start, len)`, or `None`
    /// when the page is full. TLAB refills lease the returned run.
    pub fn find_run(pool: &PmemPool, page: usize, class: usize) -> Option<(usize, usize)> {
        let bm = Self::bitmap(pool, page).load(Ordering::Acquire);
        let n = slots_in_class(class);
        let mut free = !bm & ((1u64 << n) - 1);
        let mut best = (0usize, 0usize);
        while free != 0 {
            let start = free.trailing_zeros() as usize;
            let len = (free >> start).trailing_ones() as usize;
            if len > best.1 {
                best = (start, len);
            }
            free &= !(((1u64 << len) - 1) << start);
        }
        (best.1 > 0).then_some(best)
    }

    /// Whether the page has no allocated slots.
    pub fn is_empty(pool: &PmemPool, page: usize) -> bool {
        Self::bitmap(pool, page).load(Ordering::Acquire) == 0
    }
}

/// Global (volatile) heap state shared by all threads of a domain.
///
/// Persistent state is limited to the bump pointer (in the heap meta page)
/// and the per-page headers; everything else is rebuilt by
/// [`NvHeap::attach`] after a crash.
pub struct NvHeap {
    pool: Arc<PmemPool>,
    /// Durable high-water mark: address of the next never-used page.
    bump_addr: usize,
    /// Volatile free lists of completely / partially free pages per class.
    reusable: Mutex<[Vec<usize>; N_CLASSES]>,
    /// Pages that were never assigned a class and are fully free.
    blank: Mutex<Vec<usize>>,
}

/// Address of the first data page.
pub fn data_start(pool: &PmemPool) -> usize {
    pool.heap_start() + PAGE_SIZE + crate::apt::APT_REGION_BYTES.next_multiple_of(PAGE_SIZE)
}

impl NvHeap {
    /// Formats a fresh heap in `pool` (erasing any previous content of the
    /// meta page) and durably initialises the bump pointer.
    pub fn format(pool: Arc<PmemPool>, flusher: &mut Flusher) -> Self {
        let bump_addr = pool.heap_start();
        let start = data_start(&pool);
        pool.atomic_u64(bump_addr).store(start as u64, Ordering::Release);
        flusher.persist(bump_addr, 8);
        Self {
            pool,
            bump_addr,
            reusable: Mutex::new(std::array::from_fn(|_| Vec::new())),
            blank: Mutex::new(Vec::new()),
        }
    }

    /// Re-attaches to a heap after a crash: reads the durable bump pointer
    /// and rebuilds the volatile page lists by scanning page headers.
    pub fn attach(pool: Arc<PmemPool>) -> Self {
        let bump_addr = pool.heap_start();
        let bump = pool.atomic_u64(bump_addr).load(Ordering::Acquire) as usize;
        let mut reusable: [Vec<usize>; N_CLASSES] = std::array::from_fn(|_| Vec::new());
        let mut blank = Vec::new();
        let mut page = data_start(&pool);
        while page < bump {
            if pool.atomic_u64(page).load(Ordering::Acquire) == REGION_MAGIC {
                // Persistent region (e.g. a hash-table bucket array): skip
                // its header page and all of its data pages.
                let npages = pool.atomic_u64(page + 8).load(Ordering::Acquire) as usize;
                page += npages.max(1) * PAGE_SIZE;
                continue;
            }
            match PageHeader::read_class(&pool, page) {
                Some(class) => {
                    if PageHeader::find_free(&pool, page, class).is_some() {
                        reusable[class].push(page);
                    }
                }
                None => blank.push(page),
            }
            page += PAGE_SIZE;
        }
        Self { pool, bump_addr, reusable: Mutex::new(reusable), blank: Mutex::new(blank) }
    }

    /// The pool backing this heap.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Durable bump pointer value.
    pub fn bump(&self) -> usize {
        self.pool.atomic_u64(self.bump_addr).load(Ordering::Acquire) as usize
    }

    /// Acquires a page for `class`, preferring reusable pages. The page
    /// header is (re-)initialised if needed. Durably advances the bump
    /// pointer when taking a fresh page (one sync, amortised over the
    /// page's ~63 slots).
    pub fn acquire_page(&self, class: usize, flusher: &mut Flusher) -> Result<usize, OutOfMemory> {
        if let Some(page) = self.reusable.lock().expect("heap lock")[class].pop() {
            return Ok(page);
        }
        if let Some(page) = self.blank.lock().expect("heap lock").pop() {
            PageHeader::init(&self.pool, page, class, flusher);
            return Ok(page);
        }
        // Fresh page: CAS the durable bump pointer forward.
        let bump = self.pool.atomic_u64(self.bump_addr);
        loop {
            let cur = bump.load(Ordering::Acquire) as usize;
            if cur + PAGE_SIZE > self.pool.heap_end() {
                return Err(OutOfMemory);
            }
            if bump
                .compare_exchange(
                    cur as u64,
                    (cur + PAGE_SIZE) as u64,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                flusher.persist(self.bump_addr, 8);
                PageHeader::init(&self.pool, cur, class, flusher);
                return Ok(cur);
            }
        }
    }

    /// Returns a page with free capacity to the shared reusable list, so
    /// another (or the same) thread can adopt it later.
    pub fn release_page(&self, page: usize, class: usize) {
        self.reusable.lock().expect("heap lock")[class].push(page);
    }

    /// Allocates a contiguous persistent region of at least `bytes` bytes
    /// (e.g. a hash-table bucket array) and returns the address of its
    /// data area. Regions live for the lifetime of the pool; the header
    /// page makes [`NvHeap::attach`] skip them when rebuilding page lists.
    pub fn alloc_region(&self, bytes: usize, flusher: &mut Flusher) -> Result<usize, OutOfMemory> {
        let npages = 1 + bytes.div_ceil(PAGE_SIZE);
        let bump = self.pool.atomic_u64(self.bump_addr);
        loop {
            let cur = bump.load(Ordering::Acquire) as usize;
            if cur + npages * PAGE_SIZE > self.pool.heap_end() {
                return Err(OutOfMemory);
            }
            if bump
                .compare_exchange(
                    cur as u64,
                    (cur + npages * PAGE_SIZE) as u64,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.pool.atomic_u64(cur + 8).store(npages as u64, Ordering::Release);
                self.pool.atomic_u64(cur).store(REGION_MAGIC, Ordering::Release);
                flusher.clwb(cur);
                flusher.persist(self.bump_addr, 8);
                return Ok(cur + PAGE_SIZE);
            }
        }
    }

    /// Frees a persistent region previously returned by
    /// [`NvHeap::alloc_region`], identified by its *data* address. The
    /// region's pages are zeroed (so a future [`NvHeap::attach`] or region
    /// reuse sees a clean slate), the `REGION_MAGIC` header is erased, and
    /// every page joins the blank list for reuse by `acquire_page`.
    ///
    /// The caller must guarantee no thread can still reach the region —
    /// in practice the region is retired through an epoch generation
    /// ([`crate::ThreadCtx::retire_region`]) or freed during
    /// single-threaded recovery.
    pub fn free_region(&self, data_addr: usize, flusher: &mut Flusher) {
        let hdr = data_addr - PAGE_SIZE;
        debug_assert_eq!(
            self.pool.atomic_u64(hdr).load(Ordering::Acquire),
            REGION_MAGIC,
            "free_region on a non-region address"
        );
        let npages = self.pool.atomic_u64(hdr + 8).load(Ordering::Acquire) as usize;
        if npages == 0 {
            // A crash tore an earlier free of this region between its
            // zeroing fence and the magic-clear: the page-count word and
            // all data pages are durably blank already ([`NvHeap::attach`]
            // put the data pages on the blank list), only the magic
            // survives. Roll the free forward — erase the magic and hand
            // the header page back.
            self.pool.atomic_u64(hdr).store(0, Ordering::Release);
            flusher.persist(hdr, 8);
            self.blank.lock().expect("heap lock").push(hdr);
            return;
        }
        // Zero the whole run (header page included) before erasing the
        // magic: once the magic is gone a concurrent crash-recovery scan
        // must find blank pages, not stale bucket words that could alias a
        // page header.
        for w in (8..npages * PAGE_SIZE).step_by(8) {
            self.pool.atomic_u64(hdr + w).store(0, Ordering::Relaxed);
        }
        flusher.clwb_range(hdr + 8, npages * PAGE_SIZE - 8);
        flusher.fence();
        self.pool.atomic_u64(hdr).store(0, Ordering::Release);
        flusher.persist(hdr, 8);
        let mut blank = self.blank.lock().expect("heap lock");
        for p in 0..npages {
            blank.push(hdr + p * PAGE_SIZE);
        }
    }

    /// Data addresses of all live persistent regions up to the bump
    /// pointer. Used by the data-structure layer's recovery sweep to free
    /// regions that lost their last durable reference in a crash.
    pub fn regions(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut page = data_start(&self.pool);
        let bump = self.bump();
        while page < bump {
            if self.pool.atomic_u64(page).load(Ordering::Acquire) == REGION_MAGIC {
                let npages = self.pool.atomic_u64(page + 8).load(Ordering::Acquire) as usize;
                out.push(page + PAGE_SIZE);
                page += npages.max(1) * PAGE_SIZE;
                continue;
            }
            page += PAGE_SIZE;
        }
        out
    }

    /// Iterates over all initialised pages `(page, class)` up to the bump
    /// pointer. Used by recovery audits and tests.
    pub fn pages(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut page = data_start(&self.pool);
        let bump = self.bump();
        while page < bump {
            if self.pool.atomic_u64(page).load(Ordering::Acquire) == REGION_MAGIC {
                let npages = self.pool.atomic_u64(page + 8).load(Ordering::Acquire) as usize;
                page += npages.max(1) * PAGE_SIZE;
                continue;
            }
            if let Some(class) = PageHeader::read_class(&self.pool, page) {
                out.push((page, class));
            }
            page += PAGE_SIZE;
        }
        out
    }
}

/// The heap area of the pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "persistent heap exhausted")
    }
}

impl std::error::Error for OutOfMemory {}

/// Bytes needed for the APT region; re-exported here to keep the layout
/// computation in one place.
pub(crate) const _ASSERT_THREADS: usize = MAX_THREADS;

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{Mode, PoolBuilder};

    fn heap() -> (Arc<PmemPool>, NvHeap, Flusher) {
        let pool = PoolBuilder::new(4 << 20).mode(Mode::CrashSim).build();
        let mut f = pool.flusher();
        let h = NvHeap::format(Arc::clone(&pool), &mut f);
        (pool, h, f)
    }

    #[test]
    fn class_of_maps_sizes() {
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(64), 0);
        assert_eq!(class_of(65), 1);
        assert_eq!(class_of(256), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds largest class")]
    fn class_of_rejects_huge() {
        let _ = class_of(257);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn slot_counts_match_page_geometry() {
        assert_eq!(slots_in_class(0), 63);
        assert_eq!(slots_in_class(1), 31);
        assert_eq!(slots_in_class(2), 21);
        assert_eq!(slots_in_class(3), 15);
        for class in 0..N_CLASSES {
            let last = PageHeader::slot_addr(0, class, slots_in_class(class) - 1);
            assert!(last + CLASSES[class] <= PAGE_SIZE, "class {class} overflows page");
        }
    }

    #[test]
    fn acquire_initialises_header() {
        let (pool, heap, mut f) = heap();
        let page = heap.acquire_page(2, &mut f).unwrap();
        assert_eq!(page % PAGE_SIZE, 0);
        assert_eq!(PageHeader::read_class(&pool, page), Some(2));
        assert!(PageHeader::is_empty(&pool, page));
    }

    #[test]
    fn set_and_clear_slots() {
        let (pool, heap, mut f) = heap();
        let page = heap.acquire_page(0, &mut f).unwrap();
        assert!(PageHeader::try_set(&pool, page, 5));
        assert!(!PageHeader::try_set(&pool, page, 5), "double alloc detected");
        assert_eq!(PageHeader::find_free(&pool, page, 0), Some(0));
        PageHeader::clear(&pool, page, 5);
        assert!(PageHeader::is_empty(&pool, page));
    }

    #[test]
    fn find_free_at_prefers_cursor_then_falls_back() {
        let (pool, heap, mut f) = heap();
        let page = heap.acquire_page(0, &mut f).unwrap();
        for i in 0..5 {
            PageHeader::try_set(&pool, page, i);
        }
        assert_eq!(PageHeader::find_free_at(&pool, page, 0, 5), Some(5));
        assert_eq!(PageHeader::find_free_at(&pool, page, 0, 9), Some(9));
        // Everything from the cursor on is taken: fall back to the lowest
        // free slot rather than declaring the page full.
        let n = slots_in_class(0);
        for i in 9..n {
            PageHeader::try_set(&pool, page, i);
        }
        PageHeader::clear(&pool, page, 2);
        assert_eq!(PageHeader::find_free_at(&pool, page, 0, 9), Some(2));
        PageHeader::try_set(&pool, page, 2);
        for i in 5..9 {
            PageHeader::try_set(&pool, page, i);
        }
        assert_eq!(PageHeader::find_free_at(&pool, page, 0, 0), None);
    }

    #[test]
    fn find_run_picks_longest_free_run() {
        let (pool, heap, mut f) = heap();
        let page = heap.acquire_page(0, &mut f).unwrap();
        let n = slots_in_class(0);
        assert_eq!(PageHeader::find_run(&pool, page, 0), Some((0, n)));
        // Split the free space: 0..3 free, slot 3 taken, 4.. free.
        PageHeader::try_set(&pool, page, 3);
        assert_eq!(PageHeader::find_run(&pool, page, 0), Some((4, n - 4)));
        for i in 0..n {
            PageHeader::try_set(&pool, page, i);
        }
        assert_eq!(PageHeader::find_run(&pool, page, 0), None);
    }

    #[test]
    fn slot_addr_round_trips_index() {
        let page = 0x10000;
        for class in 0..N_CLASSES {
            for i in 0..slots_in_class(class) {
                let addr = PageHeader::slot_addr(page, class, i);
                assert_eq!(PageHeader::slot_index(addr, class), i);
                assert_eq!(page_of(addr), page);
            }
        }
    }

    #[test]
    fn bump_pointer_survives_crash() {
        let (pool, heap, mut f) = heap();
        let p1 = heap.acquire_page(0, &mut f).unwrap();
        let _p2 = heap.acquire_page(1, &mut f).unwrap();
        let bump_before = heap.bump();
        // Make page headers durable (normally the data-structure fence
        // does this).
        f.fence();
        drop(heap);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        let heap = NvHeap::attach(Arc::clone(&pool));
        assert_eq!(heap.bump(), bump_before);
        assert_eq!(PageHeader::read_class(&pool, p1), Some(0));
    }

    #[test]
    fn attach_rebuilds_reusable_lists() {
        let (pool, heap, mut f) = heap();
        let page = heap.acquire_page(0, &mut f).unwrap();
        PageHeader::try_set(&pool, page, 0);
        f.clwb(page);
        f.fence();
        drop(heap);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        let heap = NvHeap::attach(Arc::clone(&pool));
        // The page has free slots, so it must be adopted for reuse.
        let got = heap.acquire_page(0, &mut f).unwrap();
        assert_eq!(got, page);
    }

    #[test]
    fn exhaustion_reports_oom() {
        let pool = PoolBuilder::new(2 << 20).mode(Mode::Perf).build();
        let mut f = pool.flusher();
        let heap = NvHeap::format(Arc::clone(&pool), &mut f);
        let mut n = 0;
        while heap.acquire_page(0, &mut f).is_ok() {
            n += 1;
            assert!(n < 10_000, "runaway");
        }
        assert!(n > 0);
    }
}

//! The allocation domain: glue between the heap, the epoch manager and the
//! active page tables, exposed to data structures as per-thread
//! [`ThreadCtx`] handles.
//!
//! # Lifecycle
//!
//! * [`NvDomain::create`] formats a fresh heap in a pool.
//! * Threads call [`NvDomain::register`] and perform operations between
//!   [`ThreadCtx::begin_op`] / [`ThreadCtx::end_op`].
//! * After a (simulated) crash, [`NvDomain::attach`] re-opens the heap and
//!   [`NvDomain::recover_leaks`] frees allocated-but-unreachable nodes
//!   using the membership oracle provided by the data structure (§5.5).

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use pmem::{CrashEvent, Flusher, PmemPool};

use crate::apt::{self, ActivePageTable, Activity, AptStats};
use crate::epoch::{EpochManager, EpochVector};
use crate::heap::{class_of, page_of, slots_in_class, NvHeap, OutOfMemory, PageHeader, N_CLASSES};
use crate::tlab::{self, Tlab};

/// Retired nodes are sealed into a generation once this many accumulate.
pub const GENERATION_SIZE: usize = 64;

/// How allocation/reclamation intentions are made crash-safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemMode {
    /// NV-epochs (§5): durable active page table, synced only on misses.
    #[default]
    NvEpochs,
    /// The traditional approach the paper argues against (§5.1): every
    /// allocation and every unlink durably logs its intention **and
    /// waits** — one sync per alloc and per retire. Used as the baseline
    /// of Figure 9b.
    IntentLog,
}

/// A sealed generation of retired nodes (and whole persistent regions)
/// awaiting a safe epoch.
struct Generation {
    nodes: Vec<usize>,
    regions: Vec<usize>,
    snapshot: EpochVector,
}

/// Shared state of an allocation domain.
pub struct NvDomain {
    pool: Arc<PmemPool>,
    heap: NvHeap,
    epochs: EpochManager,
}

impl NvDomain {
    /// Formats a fresh domain in `pool`.
    pub fn create(pool: Arc<PmemPool>) -> Arc<Self> {
        let mut flusher = pool.flusher();
        let heap = NvHeap::format(Arc::clone(&pool), &mut flusher);
        Arc::new(Self { pool, heap, epochs: EpochManager::new() })
    }

    /// Re-attaches to an existing heap after a crash. Call
    /// [`Self::recover_leaks`] before serving new operations.
    pub fn attach(pool: Arc<PmemPool>) -> Arc<Self> {
        let heap = NvHeap::attach(Arc::clone(&pool));
        Arc::new(Self { pool, heap, epochs: EpochManager::new() })
    }

    /// The pool backing this domain.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// The shared heap.
    pub fn heap(&self) -> &NvHeap {
        &self.heap
    }

    /// The epoch manager (exposed for tests and instrumentation).
    pub fn epochs(&self) -> &EpochManager {
        &self.epochs
    }

    /// Registers the calling thread, returning its operation context.
    pub fn register(self: &Arc<Self>) -> ThreadCtx {
        let tid = self.epochs.register();
        let mut flusher = self.pool.flusher();
        let apt = ActivePageTable::open(Arc::clone(&self.pool), tid, &mut flusher);
        ThreadCtx {
            domain: Arc::clone(self),
            tid,
            flusher,
            apt,
            cur_page: [None; N_CLASSES],
            find_cursor: [0; N_CLASSES],
            tlabs: [Tlab::EMPTY; N_CLASSES],
            tlab_enabled: true,
            tlab_hits: 0,
            tlab_misses: 0,
            tlab_refills: 0,
            open_gen: Vec::with_capacity(GENERATION_SIZE),
            open_regions: Vec::new(),
            pending: VecDeque::new(),
            cur_epoch: 0,
            trim_hook: None,
            mem_mode: MemMode::default(),
        }
    }

    /// Frees every allocated-but-unreachable node in the active pages
    /// (§5.5, first approach). `reachable(addr)` must return whether the
    /// node at `addr` is linked in the data structure — typically a search
    /// for the node's key followed by an address identity check.
    ///
    /// Must be called after a crash with no concurrent activity, before
    /// new operations start.
    pub fn recover_leaks(&self, mut reachable: impl FnMut(usize) -> bool) -> RecoveryReport {
        let mut flusher = self.pool.flusher();
        let mut report = RecoveryReport::default();
        let pages: Vec<usize> = match apt::active_pages(&self.pool) {
            Some(p) => p,
            None => {
                report.used_full_scan = true;
                self.heap.pages().into_iter().map(|(p, _)| p).collect()
            }
        };
        for page in pages {
            let Some(class) = PageHeader::read_class(&self.pool, page) else {
                // The page was recorded active but its header never became
                // durable: it holds no durably-linked node, reformat later.
                continue;
            };
            report.pages_scanned += 1;
            let bitmap = PageHeader::bitmap(&self.pool, page).load(Ordering::Acquire);
            for i in 0..slots_in_class(class) {
                if bitmap & (1 << i) == 0 {
                    continue;
                }
                report.slots_scanned += 1;
                let addr = PageHeader::slot_addr(page, class, i);
                if !reachable(addr) {
                    let prev = PageHeader::clear(&self.pool, page, i);
                    report.leaks_freed += 1;
                    if prev == full_mask(class) {
                        self.heap.release_page(page, class);
                    }
                }
            }
            flusher.clwb(page);
        }
        // Intent slots (MemMode::IntentLog): each names at most one node
        // whose alloc/unlink was in flight at the crash.
        for tid in 0..crate::epoch::MAX_THREADS {
            for which in 0..2 {
                let slot = crate::apt::intent_slot(&self.pool, tid, which);
                let addr = self.pool.atomic_u64(slot).load(Ordering::Acquire) as usize;
                if addr == 0 {
                    continue;
                }
                let page = page_of(addr);
                let Some(class) = PageHeader::read_class(&self.pool, page) else {
                    continue;
                };
                let i = PageHeader::slot_index(addr, class);
                if i >= slots_in_class(class)
                    || PageHeader::bitmap(&self.pool, page).load(Ordering::Acquire) & (1 << i) == 0
                {
                    continue;
                }
                report.slots_scanned += 1;
                if !reachable(addr) {
                    let prev = PageHeader::clear(&self.pool, page, i);
                    report.leaks_freed += 1;
                    if prev == full_mask(class) {
                        self.heap.release_page(page, class);
                    }
                    flusher.clwb(page);
                }
            }
        }
        flusher.fence();
        apt::clear_all(&self.pool, &mut flusher);
        report
    }

    /// Full-heap leak audit: counts allocated slots whose node is not
    /// `reachable`. Unlike [`Self::recover_leaks`] it scans *every*
    /// formatted page (not just the active ones) and frees nothing, so it
    /// can assert the absence of leaks after a recovery pass — the
    /// crashtest subsystem requires this to be 0 at every crash point.
    ///
    /// Quiescent only: no concurrent allocation or reclamation.
    pub fn count_unreachable(&self, mut reachable: impl FnMut(usize) -> bool) -> u64 {
        let mut leaked = 0;
        for (page, class) in self.heap.pages() {
            let bitmap = PageHeader::bitmap(&self.pool, page).load(Ordering::Acquire);
            for i in 0..slots_in_class(class) {
                if bitmap & (1 << i) == 0 {
                    continue;
                }
                let addr = PageHeader::slot_addr(page, class, i);
                if !reachable(addr) {
                    leaked += 1;
                }
            }
        }
        leaked
    }
}

fn full_mask(class: usize) -> u64 {
    (1u64 << slots_in_class(class)) - 1
}

/// Outcome of a leak-recovery pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Active pages scanned.
    pub pages_scanned: u64,
    /// Allocated slots whose reachability was checked.
    pub slots_scanned: u64,
    /// Leaked (allocated but unreachable) nodes freed.
    pub leaks_freed: u64,
    /// Whether the ALL_ACTIVE fallback forced a full-heap scan.
    pub used_full_scan: bool,
}

impl RecoveryReport {
    /// Counter-wise accumulation: sums the scan counters and ORs the
    /// full-scan flag. Used to merge the per-shard reports of a parallel
    /// recovery (e.g. `ShardedNvMemcached::recover`) into one aggregate.
    pub fn merge(&mut self, other: RecoveryReport) {
        self.pages_scanned += other.pages_scanned;
        self.slots_scanned += other.slots_scanned;
        self.leaks_freed += other.leaks_freed;
        self.used_full_scan |= other.used_full_scan;
    }
}

/// Callback run after an APT trim writes back evicted entries (the link
/// cache registers its flush here so trimmed pages stay durable).
pub type TrimHook = Box<dyn FnMut(&mut Flusher) + Send>;

/// Per-thread operation context: allocation, retirement, epochs and the
/// thread's flusher.
///
/// Not `Sync`; create one per worker thread via [`NvDomain::register`].
pub struct ThreadCtx {
    domain: Arc<NvDomain>,
    tid: usize,
    /// The thread's write-back handle. Public because data-structure
    /// operations interleave their own `clwb`/`fence` calls with
    /// allocation.
    pub flusher: Flusher,
    apt: ActivePageTable,
    cur_page: [Option<usize>; N_CLASSES],
    /// Next-free hint per class for the shared-page path: the first slot
    /// worth probing in `cur_page[class]`, lowered on local frees so
    /// single-threaded allocation order stays lowest-free-first.
    find_cursor: [usize; N_CLASSES],
    /// Per-class durable allocation leases (see [`crate::tlab`]).
    tlabs: [Tlab; N_CLASSES],
    tlab_enabled: bool,
    tlab_hits: u64,
    tlab_misses: u64,
    tlab_refills: u64,
    open_gen: Vec<usize>,
    open_regions: Vec<usize>,
    pending: VecDeque<Generation>,
    cur_epoch: u64,
    trim_hook: Option<TrimHook>,
    mem_mode: MemMode,
}

impl ThreadCtx {
    /// Selects the memory-management durability scheme (default:
    /// [`MemMode::NvEpochs`]). [`MemMode::IntentLog`] adds the
    /// traditional waiting intent write to every allocation and retire —
    /// the Figure 9b baseline.
    pub fn set_mem_mode(&mut self, mode: MemMode) {
        if mode == MemMode::IntentLog {
            // The intent log IS the per-allocation durability record;
            // leases would bypass it, so retire them and allocate through
            // the shared path (`alloc` checks the mode).
            self.retire_tlabs();
        }
        self.mem_mode = mode;
    }

    /// Enables or disables the durable thread-local allocation buffers
    /// (default: enabled). Disabling retires any live lease and restores
    /// the exact pre-TLAB shared-page allocation behavior — the `TLAB=0`
    /// bench knob and the equivalence tests run through this.
    pub fn set_tlab_enabled(&mut self, on: bool) {
        if !on {
            self.retire_tlabs();
        }
        self.tlab_enabled = on;
    }

    /// Durably records an intention in this thread's intent slot and
    /// waits (the §5.1 "traditional approach"): one sync per call.
    fn log_intent(&mut self, addr: usize, which: usize) {
        let slot = crate::apt::intent_slot(&self.domain.pool, self.tid, which);
        self.domain.pool.atomic_u64(slot).store(addr as u64, Ordering::Release);
        self.flusher.persist(slot, 8);
    }
    /// This thread's id within the domain.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The domain this context belongs to.
    pub fn domain(&self) -> &Arc<NvDomain> {
        &self.domain
    }

    /// The pool backing the domain.
    pub fn pool(&self) -> &Arc<PmemPool> {
        self.domain.pool.clone_ref()
    }

    /// Installs a hook run before an APT trim. The log-free structures use
    /// this to flush their link cache (§5.4 requires that no cached link
    /// refer to a page being trimmed).
    pub fn set_trim_hook(&mut self, hook: TrimHook) {
        self.trim_hook = Some(hook);
    }

    /// Marks the start of a data-structure operation.
    #[inline]
    pub fn begin_op(&mut self) {
        self.cur_epoch = self.domain.epochs.begin_op(self.tid);
    }

    /// Marks the end of a data-structure operation; opportunistically
    /// collects settled generations and trims the APT.
    ///
    /// TLAB leases deliberately survive operation boundaries: the durable
    /// lease word already bounds the recovery scan, so parking here would
    /// buy nothing and cost a refill per operation. Leases are returned at
    /// [`Self::seal_generation`], thread drop and OOM pressure instead.
    #[inline]
    pub fn end_op(&mut self) {
        self.cur_epoch = self.domain.epochs.end_op(self.tid);
        self.try_collect();
        if self.apt.wants_trim() {
            self.trim_apt();
        }
    }

    /// Current epoch of this thread.
    pub fn epoch(&self) -> u64 {
        self.cur_epoch
    }

    /// APT hit/miss counters (Figure 9a) plus the TLAB bump/refill
    /// counters.
    pub fn apt_stats(&self) -> AptStats {
        let mut s = self.apt.stats();
        s.tlab_hits = self.tlab_hits;
        s.tlab_misses = self.tlab_misses;
        s.tlab_refills = self.tlab_refills;
        s
    }

    /// Resets APT, TLAB and flush counters (after warm-up).
    pub fn reset_stats(&mut self) {
        self.apt.reset_stats();
        self.flusher.reset_stats();
        self.tlab_hits = 0;
        self.tlab_misses = 0;
        self.tlab_refills = 0;
    }

    /// Allocates a node of `size` bytes (rounded up to its size class).
    ///
    /// Implements Figure 4: the prospective page is durably marked active
    /// *before* the slot is marked allocated, and the allocated bit is
    /// written back without waiting — the caller's pre-link fence covers
    /// it (§5.5 relies on this ordering).
    ///
    /// The returned memory is uninitialised; the caller must initialise it
    /// and persist the contents before publishing a link to it.
    ///
    /// With TLABs enabled (the default under [`MemMode::NvEpochs`]) the
    /// hot path is a private bump through a durably-leased run of slots —
    /// no bitmap probe, no APT lookup, no shared-list touch (see
    /// [`crate::tlab`]). With TLABs disabled the original shared-page
    /// path runs, now with a next-free cursor instead of an O(slots)
    /// rescan.
    pub fn alloc(&mut self, size: usize) -> Result<usize, OutOfMemory> {
        let class = class_of(size);
        if self.tlab_enabled && self.mem_mode == MemMode::NvEpochs {
            self.alloc_tlab(class)
        } else {
            self.alloc_shared(class)
        }
    }

    /// TLAB fast path: bump the lease; refill when exhausted.
    fn alloc_tlab(&mut self, class: usize) -> Result<usize, OutOfMemory> {
        let pool = Arc::clone(&self.domain.pool);
        let mut refilled = false;
        loop {
            while self.tlabs[class].has_room() {
                let t = self.tlabs[class];
                self.tlabs[class].next = t.next + 1;
                if PageHeader::try_set(&pool, t.page, t.next) {
                    if refilled {
                        self.tlab_misses += 1;
                    } else {
                        self.tlab_hits += 1;
                    }
                    self.flusher.clwb(t.page); // bitmap write-back, no wait
                    return Ok(PageHeader::slot_addr(t.page, class, t.next));
                }
                // A racing lease on a doubly-listed page took this slot:
                // skip it and keep bumping (try_set arbitrates, exactly as
                // on the shared path).
            }
            refilled = true;
            self.refill_tlab(class)?;
        }
    }

    /// The original shared-page path (TLAB disabled / intent-log mode).
    fn alloc_shared(&mut self, class: usize) -> Result<usize, OutOfMemory> {
        let pool = Arc::clone(&self.domain.pool);
        loop {
            let page = match self.cur_page[class] {
                Some(p) => p,
                None => {
                    let p = self.domain.heap.acquire_page(class, &mut self.flusher)?;
                    self.cur_page[class] = Some(p);
                    self.find_cursor[class] = 0;
                    p
                }
            };
            let Some(slot) = PageHeader::find_free_at(&pool, page, class, self.find_cursor[class])
            else {
                // Page is full: drop it. It becomes "floating" and is
                // re-adopted through the shared reusable list when a free
                // makes space in it (see `free_slot`).
                self.cur_page[class] = None;
                self.find_cursor[class] = 0;
                continue;
            };
            let addr = PageHeader::slot_addr(page, class, slot);
            self.mark_active(page, Activity::Alloc);
            if self.mem_mode == MemMode::IntentLog {
                self.log_intent(addr, 0);
            }
            if !PageHeader::try_set(&pool, page, slot) {
                // Extremely unlikely (only the owner sets bits), but retry
                // defensively rather than corrupting state.
                continue;
            }
            self.find_cursor[class] = slot + 1;
            self.flusher.clwb(page); // bitmap write-back, no wait
            return Ok(addr);
        }
    }

    /// Publishes a fresh lease for `class`: parks the old one, acquires a
    /// page, picks its longest free run and durably records the lease word
    /// before any slot of the run is marked allocated.
    fn refill_tlab(&mut self, class: usize) -> Result<(), OutOfMemory> {
        self.flusher.note_crash_event(CrashEvent::TlabLease);
        self.park_tlab(class);
        let (page, start, len) = loop {
            let page = match self.domain.heap.acquire_page(class, &mut self.flusher) {
                Ok(p) => p,
                Err(OutOfMemory) => {
                    // OOM pressure: hand every unused remainder back to the
                    // shared lists and retry once.
                    self.retire_tlabs();
                    self.domain.heap.acquire_page(class, &mut self.flusher)?
                }
            };
            match PageHeader::find_run(&self.domain.pool, page, class) {
                Some((start, len)) => break (page, start, len),
                // A duplicate listing let another thread fill this page
                // since it was released; its next freer will relist it.
                None => continue,
            }
        };
        let slot = apt::lease_slot(&self.domain.pool, self.tid, class);
        let word = tlab::encode_lease(page, start, start + len);
        self.domain.pool.atomic_u64(slot).store(word, Ordering::Release);
        self.flusher.clwb(slot);
        // Figure-4 ordering at lease granularity: the page is durably
        // covered before any slot bit is set. An APT miss persists its
        // entry, and that same fence commits the lease word and a fresh
        // page's header; on a hit the page is already durably in the APT
        // and the lease word rides the next fence.
        self.mark_active(page, Activity::Alloc);
        self.tlabs[class] = Tlab { page, next: start, end: start + len };
        self.tlab_refills += 1;
        Ok(())
    }

    /// Drops the volatile lease for `class` and returns its page to the
    /// shared reusable list if it still has free capacity. The durable
    /// lease word is left to the caller (refill overwrites it; retire
    /// clears it lazily).
    fn park_tlab(&mut self, class: usize) {
        let t = self.tlabs[class];
        if t.page == 0 {
            return;
        }
        self.tlabs[class] = Tlab::EMPTY;
        // Refresh the page's APT alloc epoch: bumps never touch the APT,
        // so without this a trim during the current operation could evict
        // the page while this op's bitmap write-backs are still unfenced.
        self.mark_active(t.page, Activity::Alloc);
        if PageHeader::find_free(&self.domain.pool, t.page, class).is_some() {
            self.domain.heap.release_page(t.page, class);
        }
    }

    /// Parks every live lease and lazily clears its durable word (a stale
    /// lease word is safe — it only widens the recovery scan). Runs on
    /// `seal_generation`, thread drop, OOM pressure and mode switches.
    fn retire_tlabs(&mut self) {
        for class in 0..N_CLASSES {
            if self.tlabs[class].page == 0 {
                continue;
            }
            self.flusher.note_crash_event(CrashEvent::TlabLease);
            self.park_tlab(class);
            let slot = apt::lease_slot(&self.domain.pool, self.tid, class);
            self.domain.pool.atomic_u64(slot).store(0, Ordering::Release);
            self.flusher.clwb(slot);
        }
    }

    /// Returns a node that was allocated but never linked (e.g. a failed
    /// insert) straight to the heap. No epoch protection is needed because
    /// no other thread ever saw the address.
    pub fn dealloc_unlinked(&mut self, addr: usize) {
        self.free_slot(addr);
    }

    /// Retires a node that has been durably unlinked from the structure.
    /// The node is freed once no concurrent operation can still hold a
    /// reference (§5.2). Durably marks the node's page active first —
    /// usually a hit (§5.1's deallocation locality).
    pub fn retire(&mut self, addr: usize) {
        self.mark_active(page_of(addr), Activity::Unlink);
        if self.mem_mode == MemMode::IntentLog {
            self.log_intent(addr, 1);
        }
        self.open_gen.push(addr);
        if self.open_gen.len() >= GENERATION_SIZE {
            self.seal_generation();
        }
    }

    /// Retires a whole persistent region (e.g. a hash table's outgrown
    /// bucket array) once it has been durably unlinked from the
    /// structure's root. The region's pages are freed after every
    /// concurrent operation that could still traverse it has finished —
    /// the same epoch rule as node retirement, at region granularity.
    ///
    /// Regions are rare (one per resize), so the generation is sealed
    /// immediately rather than waiting for [`GENERATION_SIZE`] nodes.
    pub fn retire_region(&mut self, data_addr: usize) {
        self.open_regions.push(data_addr);
        self.seal_generation();
    }

    /// Seals the open generation (if any) with a snapshot of the epoch
    /// vector.
    pub fn seal_generation(&mut self) {
        if self.open_gen.is_empty() && self.open_regions.is_empty() {
            return;
        }
        // Epoch boundary: hand unused TLAB remainders back so capacity
        // cannot hide behind idle leases while reclamation churns.
        self.retire_tlabs();
        let nodes = std::mem::replace(&mut self.open_gen, Vec::with_capacity(GENERATION_SIZE));
        let regions = std::mem::take(&mut self.open_regions);
        let snapshot = self.domain.epochs.snapshot();
        self.pending.push_back(Generation { nodes, regions, snapshot });
    }

    /// Frees every settled pending generation. Called automatically from
    /// [`Self::end_op`]; exposed for tests and shutdown.
    pub fn try_collect(&mut self) -> usize {
        let mut freed = 0;
        while let Some(gen) = self.pending.front() {
            if !self.domain.epochs.has_advanced(&gen.snapshot) {
                break;
            }
            let gen = self.pending.pop_front().expect("non-empty pending queue");
            for addr in gen.nodes {
                self.free_slot(addr);
                freed += 1;
            }
            for region in gen.regions {
                self.domain.heap.free_region(region, &mut self.flusher);
            }
            // One fence covers the whole batch of bitmap write-backs
            // (§5.3: reclamation waits for all its deallocations at once).
            self.flusher.fence();
        }
        freed
    }

    /// Drains all retirements unconditionally. Only safe when no other
    /// thread is running operations (shutdown/tests).
    pub fn drain_all(&mut self) -> usize {
        self.seal_generation();
        let mut freed = 0;
        while let Some(gen) = self.pending.pop_front() {
            for addr in gen.nodes {
                self.free_slot(addr);
                freed += 1;
            }
            for region in gen.regions {
                self.domain.heap.free_region(region, &mut self.flusher);
            }
        }
        self.flusher.fence();
        freed
    }

    fn free_slot(&mut self, addr: usize) {
        let pool = &self.domain.pool;
        let page = page_of(addr);
        let class = PageHeader::read_class(pool, page).expect("freeing into uninitialised page");
        let slot = PageHeader::slot_index(addr, class);
        let prev = PageHeader::clear(pool, page, slot);
        debug_assert!(prev & (1 << slot) != 0, "double free at {addr:#x}");
        self.flusher.clwb(page);
        // Keep the shared-path cursor exact: a local free below it must
        // re-expose the lowest free slot.
        if self.cur_page[class] == Some(page) && slot < self.find_cursor[class] {
            self.find_cursor[class] = slot;
        }
        // Full -> non-full transition: exactly one freer observes it and
        // hands the floating page back for reuse. (An actively leased
        // page can only be full through a racing duplicate lease, in
        // which case relisting it is exactly what the bumping owner
        // needs.)
        if prev == full_mask(class) && self.cur_page[class] != Some(page) {
            self.domain.heap.release_page(page, class);
        }
    }

    fn mark_active(&mut self, page: usize, why: Activity) {
        loop {
            match self.apt.ensure_active(page, why, self.cur_epoch, &mut self.flusher) {
                Ok(_) => return,
                Err(_full) => {
                    if self.trim_apt() == 0 {
                        // Nothing trimmable: fall back to the safe
                        // whole-heap-scan marker and stop tracking.
                        self.apt.set_all_active(&mut self.flusher);
                        return;
                    }
                }
            }
        }
    }

    fn trim_apt(&mut self) -> usize {
        if let Some(mut hook) = self.trim_hook.take() {
            hook(&mut self.flusher);
            self.trim_hook = Some(hook);
        }
        // A page is settled when none of this thread's not-yet-freed
        // retirements belong to it, and it is not one of the thread's
        // current allocation pages (those are in continuous use; evicting
        // them would turn every allocation into an APT miss).
        let open = &self.open_gen;
        let pending = &self.pending;
        let cur_page = &self.cur_page;
        let tlabs = &self.tlabs;
        let cur_epoch = self.cur_epoch;
        let apt = &mut self.apt;
        apt.trim(
            cur_epoch,
            |page| {
                !cur_page.contains(&Some(page))
                    && !tlabs.iter().any(|t| t.page == page)
                    && !open.iter().any(|&a| page_of(a) == page)
                    && !pending.iter().any(|g| g.nodes.iter().any(|&a| page_of(a) == page))
            },
            &mut self.flusher,
        )
    }
}

impl Drop for ThreadCtx {
    /// Thread teardown is a park point: the unused lease remainders go
    /// back to the shared lists and the durable lease words are cleared.
    fn drop(&mut self) {
        self.retire_tlabs();
    }
}

/// Small extension trait so `ThreadCtx::pool` can return `&Arc` without a
/// clone at every call site.
trait CloneRef {
    fn clone_ref(&self) -> &Self;
}

impl CloneRef for Arc<PmemPool> {
    fn clone_ref(&self) -> &Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{Mode, PoolBuilder};

    fn domain() -> Arc<NvDomain> {
        let pool = PoolBuilder::new(8 << 20).mode(Mode::CrashSim).build();
        NvDomain::create(pool)
    }

    #[test]
    fn alloc_returns_distinct_aligned_slots() {
        let d = domain();
        let mut ctx = d.register();
        ctx.begin_op();
        let a = ctx.alloc(64).unwrap();
        let b = ctx.alloc(64).unwrap();
        ctx.end_op();
        assert_ne!(a, b);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
    }

    #[test]
    fn second_alloc_in_same_page_is_apt_hit() {
        let d = domain();
        let mut ctx = d.register();
        // Pre-TLAB behavior pin: the shared path marks the page active on
        // every allocation.
        ctx.set_tlab_enabled(false);
        ctx.begin_op();
        let _ = ctx.alloc(64).unwrap();
        let _ = ctx.alloc(64).unwrap();
        ctx.end_op();
        let s = ctx.apt_stats();
        assert_eq!(s.alloc_misses, 1, "only the first alloc pays");
        assert_eq!(s.alloc_hits, 1);
    }

    #[test]
    fn retire_defers_free_until_epoch_advances() {
        let d = domain();
        let mut a = d.register();
        let mut b = d.register();
        a.begin_op();
        let node = a.alloc(64).unwrap();
        a.end_op();

        b.begin_op(); // b is mid-operation
        a.begin_op();
        a.retire(node);
        a.seal_generation();
        assert_eq!(a.try_collect(), 0, "b active: nothing can be freed");
        a.end_op();
        b.end_op();
        a.begin_op();
        a.end_op(); // end_op triggers collection
                    // The slot must be reusable now.
        a.begin_op();
        let again = a.alloc(64).unwrap();
        a.end_op();
        assert_eq!(again, node, "slot was recycled after epochs advanced");
    }

    #[test]
    fn dealloc_unlinked_recycles_immediately() {
        let d = domain();
        let mut ctx = d.register();
        // Pre-TLAB behavior pin: lowest-free-first reuse within the
        // current page (a TLAB bump would move on instead).
        ctx.set_tlab_enabled(false);
        ctx.begin_op();
        let a = ctx.alloc(128).unwrap();
        ctx.dealloc_unlinked(a);
        let b = ctx.alloc(128).unwrap();
        ctx.end_op();
        assert_eq!(a, b);
    }

    #[test]
    fn full_page_floats_and_returns_on_free() {
        let d = domain();
        let mut ctx = d.register();
        ctx.begin_op();
        let n = slots_in_class(0);
        let nodes: Vec<usize> = (0..n).map(|_| ctx.alloc(64).unwrap()).collect();
        let page = page_of(nodes[0]);
        assert!(nodes.iter().all(|&a| page_of(a) == page), "all in one page");
        // Page is now full; next alloc opens a new page.
        let far = ctx.alloc(64).unwrap();
        assert_ne!(page_of(far), page);
        ctx.end_op();
        // Free one node from the full page; the page must become reusable.
        ctx.begin_op();
        ctx.retire(nodes[3]);
        ctx.seal_generation();
        ctx.end_op();
        ctx.begin_op();
        ctx.end_op(); // collect
        ctx.begin_op();
        // Drain the current page, then the floating page must be adopted.
        let mut seen_old_page = false;
        for _ in 0..(2 * n) {
            let a = ctx.alloc(64).unwrap();
            if page_of(a) == page {
                seen_old_page = true;
                break;
            }
        }
        ctx.end_op();
        assert!(seen_old_page, "freed slot in floating page was reused");
    }

    #[test]
    fn recover_leaks_frees_unreachable_nodes() {
        let pool = PoolBuilder::new(8 << 20).mode(Mode::CrashSim).build();
        let d = NvDomain::create(Arc::clone(&pool));
        let mut ctx = d.register();
        ctx.begin_op();
        let keep = ctx.alloc(64).unwrap();
        let leak = ctx.alloc(64).unwrap();
        // Persist "linked" marker for keep only; the bitmap write-backs
        // are made durable by this fence too.
        ctx.flusher.fence();
        ctx.end_op();
        drop(ctx);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        let d2 = NvDomain::attach(Arc::clone(&pool));
        let report = d2.recover_leaks(|addr| addr == keep);
        assert_eq!(report.leaks_freed, 1);
        assert!(!report.used_full_scan);
        assert!(report.slots_scanned >= 2);
        // The leaked slot is allocatable again.
        let mut ctx = d2.register();
        ctx.begin_op();
        let a = ctx.alloc(64).unwrap();
        ctx.end_op();
        assert!(a == leak || page_of(a) == page_of(leak));
    }

    #[test]
    fn unflushed_allocation_does_not_survive_crash() {
        // A node allocated but whose page/bitmap was never fenced must be
        // absent after a crash (the APT entry itself IS fenced, so the
        // page is scanned — and found empty or stale).
        let pool = PoolBuilder::new(8 << 20).mode(Mode::CrashSim).build();
        let d = NvDomain::create(Arc::clone(&pool));
        let mut ctx = d.register();
        ctx.begin_op();
        let _node = ctx.alloc(64).unwrap();
        // NO fence: bitmap write-back still pending.
        ctx.end_op();
        drop(ctx);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        let d2 = NvDomain::attach(Arc::clone(&pool));
        let report = d2.recover_leaks(|_| false);
        assert_eq!(report.leaks_freed, 0, "bitmap store was not durable");
    }

    #[test]
    fn trim_hook_runs_before_trim() {
        use std::sync::atomic::{AtomicBool, Ordering as AOrd};
        let d = domain();
        let mut ctx = d.register();
        static RAN: AtomicBool = AtomicBool::new(false);
        RAN.store(false, AOrd::SeqCst);
        ctx.set_trim_hook(Box::new(|_f| RAN.store(true, AOrd::SeqCst)));
        // Touch enough distinct pages to exceed the trim threshold.
        for _ in 0..(apt::APT_TRIM_THRESHOLD + 2) {
            ctx.begin_op();
            let n = slots_in_class(3);
            for _ in 0..=n {
                let _ = ctx.alloc(256).unwrap();
            }
            ctx.end_op();
        }
        assert!(RAN.load(AOrd::SeqCst), "hook must run when the APT trims");
    }

    #[test]
    fn recovery_report_merge_sums_counters_and_ors_fallback() {
        let mut a = RecoveryReport {
            pages_scanned: 2,
            slots_scanned: 10,
            leaks_freed: 1,
            used_full_scan: false,
        };
        a.merge(RecoveryReport {
            pages_scanned: 3,
            slots_scanned: 7,
            leaks_freed: 0,
            used_full_scan: true,
        });
        assert_eq!(
            a,
            RecoveryReport {
                pages_scanned: 5,
                slots_scanned: 17,
                leaks_freed: 1,
                used_full_scan: true,
            }
        );
        let mut b = RecoveryReport::default();
        b.merge(RecoveryReport::default());
        assert_eq!(b, RecoveryReport::default());
    }

    #[test]
    fn tlab_bump_is_contiguous_and_skips_the_apt() {
        let d = domain();
        let mut ctx = d.register();
        ctx.begin_op();
        let first = ctx.alloc(64).unwrap();
        for i in 1..10 {
            let a = ctx.alloc(64).unwrap();
            assert_eq!(a, first + i * 64, "private bump is contiguous");
        }
        ctx.end_op();
        let s = ctx.apt_stats();
        assert_eq!(s.tlab_refills, 1, "one lease covers all ten allocations");
        assert_eq!(s.tlab_hits, 9);
        assert_eq!(s.tlab_misses, 1);
        assert_eq!(s.alloc_misses, 1, "one APT insert per lease, not per alloc");
        assert_eq!(s.alloc_hits, 0);
    }

    #[test]
    fn tlab_lease_word_is_durable_while_leased_and_cleared_on_drop() {
        let d = domain();
        let pool = Arc::clone(d.pool());
        let mut ctx = d.register();
        ctx.begin_op();
        let a = ctx.alloc(64).unwrap();
        ctx.end_op();
        assert_eq!(apt::lease_pages(&pool), vec![page_of(a)], "lease word published");
        drop(ctx);
        assert_eq!(apt::lease_pages(&pool), Vec::<usize>::new(), "drop retires the lease");
    }

    #[test]
    fn seal_generation_parks_the_lease() {
        let d = domain();
        let mut ctx = d.register();
        ctx.begin_op();
        let a = ctx.alloc(64).unwrap();
        ctx.retire(a);
        ctx.seal_generation();
        ctx.end_op();
        assert_eq!(ctx.tlabs[0], Tlab::EMPTY, "remainder returned at the epoch boundary");
        assert_eq!(apt::lease_pages(&d.pool), Vec::<usize>::new());
        // The returned remainder is immediately re-leasable.
        ctx.begin_op();
        let b = ctx.alloc(64).unwrap();
        ctx.end_op();
        assert_eq!(page_of(b), page_of(a), "parked page was re-adopted");
    }

    #[test]
    fn tlab_off_reproduces_shared_path_alloc_order() {
        // Equivalence pin for the TLAB=0 knob: the shared path with the
        // next-free cursor must produce exactly the pre-refactor
        // lowest-free-first address sequence.
        let d = domain();
        let mut ctx = d.register();
        ctx.set_tlab_enabled(false);
        ctx.begin_op();
        let base = ctx.alloc(64).unwrap();
        for i in 1..8 {
            assert_eq!(ctx.alloc(64).unwrap(), base + i * 64, "sequential fill");
        }
        // Free slots 2 and 5 (owner frees lower the cursor): the next two
        // allocations must reuse them lowest-first, then resume at 8.
        ctx.dealloc_unlinked(base + 2 * 64);
        ctx.dealloc_unlinked(base + 5 * 64);
        assert_eq!(ctx.alloc(64).unwrap(), base + 2 * 64);
        assert_eq!(ctx.alloc(64).unwrap(), base + 5 * 64);
        assert_eq!(ctx.alloc(64).unwrap(), base + 8 * 64);
        ctx.end_op();
        let s = ctx.apt_stats();
        assert_eq!((s.tlab_hits, s.tlab_misses, s.tlab_refills), (0, 0, 0));
    }

    #[test]
    fn tlab_survives_crash_with_zero_leaks() {
        // Crash with a half-used lease: recovery must reclaim every
        // durably-allocated-but-unreachable slot (the lease word bounds
        // the scan) and clear the lease words.
        let pool = PoolBuilder::new(8 << 20).mode(Mode::CrashSim).build();
        let d = NvDomain::create(Arc::clone(&pool));
        let mut ctx = d.register();
        ctx.begin_op();
        let keep = ctx.alloc(64).unwrap();
        for _ in 0..10 {
            let _ = ctx.alloc(64).unwrap();
        }
        ctx.flusher.fence(); // bitmap now durable; none of the 10 are linked
        ctx.end_op();
        std::mem::forget(ctx); // crash without the drop-time retire
                               // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        let d2 = NvDomain::attach(Arc::clone(&pool));
        let report = d2.recover_leaks(|addr| addr == keep);
        assert_eq!(report.leaks_freed, 10);
        assert!(!report.used_full_scan);
        assert_eq!(d2.count_unreachable(|addr| addr == keep), 0);
        assert_eq!(apt::lease_pages(&pool), Vec::<usize>::new(), "recovery cleared leases");
    }

    #[test]
    fn concurrent_alloc_free_stress() {
        let pool = PoolBuilder::new(32 << 20).mode(Mode::Perf).build();
        let d = NvDomain::create(pool);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    let mut ctx = d.register();
                    let mut live = Vec::new();
                    for i in 0..3000 {
                        ctx.begin_op();
                        if i % 3 != 2 {
                            live.push(ctx.alloc(64).unwrap());
                        } else if let Some(a) = live.pop() {
                            ctx.retire(a);
                        }
                        ctx.end_op();
                    }
                    ctx.drain_all();
                });
            }
        });
    }
}

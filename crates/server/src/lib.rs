//! **NV-Memcached over the wire**: a memcached ASCII-protocol TCP
//! front-end for [`nvmemcached::sharded::ShardedNvMemcached`].
//!
//! Until this crate, the paper's Memcached comparison (§6.5) ran
//! *in-process* — the `nvmemcached::memtier` harness calls the cache as
//! a library, which measures the data structures but not the system: no
//! kernel socket path, no request parsing, no response serialization,
//! and (because the driver is closed-loop) no view of queueing delay at
//! all. This crate supplies the missing front-end; the open-loop client
//! in `bench` supplies the missing measurement.
//!
//! Three layers, each testable without the one below:
//!
//! * [`protocol`] — an incremental parser for the memcached ASCII
//!   dialect (pure bytes-in/commands-out; tolerates arbitrary
//!   fragmentation and pipelining).
//! * [`session`] — one connection's command execution against the
//!   shared cache, batching responses per input burst; contexts are
//!   passed in per call, so one worker's context set can serve many
//!   multiplexed sessions.
//! * [`net`] — the TCP server: thread-per-core epoll readiness loops
//!   (over the raw-syscall [`sys`] shim) multiplexing non-blocking
//!   connections with write backpressure, a blocking
//!   thread-per-connection fallback, and a graceful shutdown that
//!   quiesces every shard pool before handing the cache back.
//!
//! ```no_run
//! use std::sync::Arc;
//! use pmem::{Mode, PoolBuilder};
//! use nvmemcached::sharded::ShardedNvMemcached;
//! use server::Server;
//!
//! let pools: Vec<_> =
//!     (0..4).map(|_| PoolBuilder::new(64 << 20).mode(Mode::CrashSim).build()).collect();
//! let cache = Arc::new(ShardedNvMemcached::create(&pools, 4096, 100_000, true).unwrap());
//! let server = Server::start_local(Arc::clone(&cache)).unwrap();
//! println!("serving on {}", server.local_addr());
//! // ... drive memcached clients at it ...
//! let cache = server.shutdown(); // quiesced: pools are now safe to drop
//! # drop(cache);
//! ```

#![warn(missing_docs)]

pub mod net;
pub mod protocol;
pub mod session;
pub mod sys;

pub use net::{Server, ServerConfig, ServerStats};
pub use protocol::{Command, Parser};
pub use session::Session;

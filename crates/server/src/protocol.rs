//! Incremental memcached ASCII-protocol parser.
//!
//! The parser is a pure byte-stream state machine, deliberately
//! decoupled from sockets: bytes go in via [`Parser::feed`] in whatever
//! fragments the transport produced, complete commands come out of
//! [`Parser::next`]. Every decision is a function of the *cumulative*
//! consumed stream, never of fragment boundaries, so feeding a request
//! stream one byte at a time yields exactly the same command sequence
//! (and therefore byte-identical responses) as feeding it whole — the
//! property the proptest suite pins down.
//!
//! # Dialect
//!
//! The cache stores `u64 -> u64`, so the wire dialect narrows the
//! memcached grammar accordingly (see `DESIGN.md`):
//!
//! * **Keys** are decimal `u64`s in `[1, u64::MAX]` (key 0 is reserved
//!   by the hash table's sentinel discipline).
//! * **Data blocks** are the decimal ASCII rendering of a `u64`; the
//!   `<bytes>` count frames the block exactly as in memcached, and a
//!   `get` returns the canonical rendering (leading zeros are not
//!   preserved).
//! * `flags` and `exptime` are accepted and ignored (`get` echoes
//!   flags 0); the cache has its own LRU-style eviction, not per-item
//!   expiry.
//!
//! Verbs: `set`, `add`, `replace`, `get`/`gets` (multi-key), `delete`,
//! `stats`, `version`, `quit`, all with memcached's `noreply` and error
//! conventions (`ERROR` for unknown commands, `CLIENT_ERROR …` for bad
//! input, `SERVER_ERROR …` for cache-side failures).
//!
//! # Error recovery
//!
//! Like memcached, the parser distinguishes errors that leave the
//! framing intact (a bad key on an otherwise well-formed `set` still
//! has a trustworthy `<bytes>` count, so the data block is swallowed
//! and the error deferred — [`Command::Bad`]) from errors that lose it
//! (a data block not terminated by `\r\n` means the byte stream can no
//! longer be re-synchronized — [`Fatal`], after which the connection
//! must close).

/// Commands longer than this (bytes, excluding the data block) are
/// rejected — bounds per-connection buffering and caps multi-`get`
/// fan-out.
pub const MAX_LINE: usize = 1024;

/// Data blocks longer than this are rejected outright. A valid block
/// (decimal `u64`) is at most 20 bytes; the slack merely lets oversized
/// *well-framed* payloads fail politely with their framing preserved.
pub const MAX_DATA: usize = 16 * 1024;

/// One parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `set <key> <flags> <exptime> <bytes> [noreply]` + data: upsert.
    Set {
        /// The key.
        key: u64,
        /// The decoded data block.
        value: u64,
        /// Suppress the response line.
        noreply: bool,
    },
    /// `add`: store only if absent.
    Add {
        /// The key.
        key: u64,
        /// The decoded data block.
        value: u64,
        /// Suppress the response line.
        noreply: bool,
    },
    /// `replace`: store only if present.
    Replace {
        /// The key.
        key: u64,
        /// The decoded data block.
        value: u64,
        /// Suppress the response line.
        noreply: bool,
    },
    /// `get`/`gets` over one or more keys.
    Get {
        /// The keys, in request order.
        keys: Vec<u64>,
    },
    /// `delete <key> [noreply]`.
    Delete {
        /// The key.
        key: u64,
        /// Suppress the response line.
        noreply: bool,
    },
    /// `stats`: server observability counters.
    Stats,
    /// `stats reshard`: the serving topology and, mid-reshard, the
    /// migration's progress.
    StatsReshard,
    /// `version`.
    Version,
    /// `quit`: close the connection without a response.
    Quit,
    /// A recoverable protocol error: framing is intact, respond with
    /// `line` (unless the offending command said `noreply`) and keep
    /// reading.
    Bad {
        /// The error response line (without the trailing `\r\n`).
        line: &'static str,
        /// The offending command asked for silence.
        noreply: bool,
    },
}

/// An unrecoverable protocol error: the byte stream can no longer be
/// re-synchronized. Respond with the contained line, then close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fatal(pub &'static str);

const BAD_FORMAT: &str = "CLIENT_ERROR bad command line format";
const BAD_KEY: &str = "CLIENT_ERROR key must be a decimal u64 in [1, 2^64)";
const BAD_VALUE: &str = "CLIENT_ERROR value must be a decimal u64";

#[derive(Debug, Clone, Copy)]
enum Verb {
    Set,
    Add,
    Replace,
}

/// A storage command whose line has been parsed but whose data block
/// has not fully arrived. `err` defers line-level validation failures
/// until after the block is swallowed (framing first, diagnostics
/// second).
#[derive(Debug)]
struct PendingStore {
    verb: Verb,
    key: u64,
    nbytes: usize,
    noreply: bool,
    err: Option<&'static str>,
}

/// The incremental parser: a growable buffer plus the data-block
/// continuation state.
#[derive(Debug, Default)]
pub struct Parser {
    buf: Vec<u8>,
    pos: usize,
    pending: Option<PendingStore>,
    dead: bool,
}

impl Parser {
    /// A fresh parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends transport bytes. Fragmentation is irrelevant: only the
    /// cumulative stream matters.
    pub fn feed(&mut self, bytes: &[u8]) {
        if !self.dead {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Extracts the next complete command, or `Ok(None)` when more
    /// bytes are needed. After an `Err` the parser is dead: further
    /// input is discarded and `next_command` keeps returning
    /// `Ok(None)`.
    pub fn next_command(&mut self) -> Result<Option<Command>, Fatal> {
        if self.dead {
            return Ok(None);
        }
        let r = self.advance();
        if r.is_err() {
            self.dead = true;
            self.buf.clear();
            self.pos = 0;
        } else {
            self.compact();
        }
        r
    }

    /// Reclaims the consumed prefix once it dominates the buffer.
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn advance(&mut self) -> Result<Option<Command>, Fatal> {
        if let Some(p) = &self.pending {
            // Awaiting a data block: need the block plus its `\r\n`.
            let need = p.nbytes + 2;
            if self.buf.len() - self.pos < need {
                return Ok(None);
            }
            let start = self.pos;
            self.pos += need;
            let p = self.pending.take().expect("checked above");
            if &self.buf[start + p.nbytes..start + p.nbytes + 2] != b"\r\n" {
                return Err(Fatal("CLIENT_ERROR bad data chunk"));
            }
            if let Some(line) = p.err {
                return Ok(Some(Command::Bad { line, noreply: p.noreply }));
            }
            let Some(value) = parse_u64(&self.buf[start..start + p.nbytes]) else {
                return Ok(Some(Command::Bad { line: BAD_VALUE, noreply: p.noreply }));
            };
            return Ok(Some(match p.verb {
                Verb::Set => Command::Set { key: p.key, value, noreply: p.noreply },
                Verb::Add => Command::Add { key: p.key, value, noreply: p.noreply },
                Verb::Replace => Command::Replace { key: p.key, value, noreply: p.noreply },
            }));
        }

        // Command line: terminated by `\n` (optionally preceded by
        // `\r`, which memcached also tolerates for hand-typed input).
        let avail = &self.buf[self.pos..];
        let Some(nl) = avail.iter().take(MAX_LINE + 1).position(|&b| b == b'\n') else {
            if avail.len() > MAX_LINE {
                return Err(Fatal("CLIENT_ERROR line too long"));
            }
            return Ok(None);
        };
        let line_start = self.pos;
        self.pos += nl + 1;
        let mut line = &self.buf[line_start..line_start + nl];
        if let [head @ .., b'\r'] = line {
            line = head;
        }
        match parse_line(line) {
            Parsed::Cmd(c) => Ok(Some(c)),
            Parsed::Fatal(f) => Err(f),
            Parsed::Store(p) => {
                self.pending = Some(p);
                // The data block may already be buffered (pipelined
                // client): consume it in the same call.
                self.advance()
            }
        }
    }
}

enum Parsed {
    Cmd(Command),
    Store(PendingStore),
    Fatal(Fatal),
}

fn parse_line(line: &[u8]) -> Parsed {
    let bad = |line| Parsed::Cmd(Command::Bad { line, noreply: false });
    let Ok(text) = std::str::from_utf8(line) else {
        return bad("ERROR");
    };
    let mut it = text.split_ascii_whitespace();
    let Some(verb) = it.next() else {
        // Blank line.
        return bad("ERROR");
    };
    match verb {
        "set" | "add" | "replace" => {
            let verb = match verb {
                "set" => Verb::Set,
                "add" => Verb::Add,
                _ => Verb::Replace,
            };
            parse_store(verb, it)
        }
        "get" | "gets" => {
            let mut keys = Vec::new();
            for tok in it {
                let Some(key) = parse_key(tok) else {
                    return bad(BAD_KEY);
                };
                keys.push(key);
            }
            if keys.is_empty() {
                return bad("ERROR");
            }
            Parsed::Cmd(Command::Get { keys })
        }
        "delete" => {
            let Some(key_tok) = it.next() else {
                return bad("ERROR");
            };
            let noreply = match it.next() {
                None => false,
                Some("noreply") if it.next().is_none() => true,
                Some(_) => return bad(BAD_FORMAT),
            };
            let Some(key) = parse_key(key_tok) else {
                return Parsed::Cmd(Command::Bad { line: BAD_KEY, noreply });
            };
            Parsed::Cmd(Command::Delete { key, noreply })
        }
        "stats" => match it.next() {
            None => Parsed::Cmd(Command::Stats),
            Some("reshard") if it.next().is_none() => Parsed::Cmd(Command::StatsReshard),
            Some(_) => bad("ERROR"),
        },
        "version" => Parsed::Cmd(Command::Version),
        "quit" => Parsed::Cmd(Command::Quit),
        _ => bad("ERROR"),
    }
}

/// Parses the tail of a storage command line. The `<bytes>` count is
/// validated *first*: without it the data block cannot be skipped and
/// the command degrades to a plain `ERROR` (the next line is treated as
/// a fresh command, exactly like memcached). Every other field failure
/// is deferred past the swallow.
fn parse_store<'t>(verb: Verb, mut it: impl Iterator<Item = &'t str>) -> Parsed {
    let (key_tok, flags, exptime) = (it.next(), it.next(), it.next());
    let Some(nbytes) = it.next().and_then(|t| t.parse::<usize>().ok()) else {
        return Parsed::Cmd(Command::Bad { line: "ERROR", noreply: false });
    };
    if nbytes > MAX_DATA {
        return Parsed::Fatal(Fatal("CLIENT_ERROR object too large for cache"));
    }
    let mut err = None;
    let noreply = match it.next() {
        None => false,
        Some("noreply") if it.next().is_none() => true,
        Some(_) => {
            err = Some(BAD_FORMAT);
            false
        }
    };
    if flags.and_then(|t| t.parse::<u64>().ok()).is_none()
        || exptime.and_then(|t| t.parse::<i64>().ok()).is_none()
    {
        err = Some(BAD_FORMAT);
    }
    let key = match key_tok.and_then(parse_key) {
        Some(k) => k,
        None => {
            err = Some(BAD_KEY);
            0
        }
    };
    Parsed::Store(PendingStore { verb, key, nbytes, noreply, err })
}

/// Decimal `u64`, rejecting empty input, non-digits and overflow.
fn parse_u64(bytes: &[u8]) -> Option<u64> {
    if bytes.is_empty() || bytes.len() > 20 || !bytes.iter().all(u8::is_ascii_digit) {
        return None;
    }
    std::str::from_utf8(bytes).ok()?.parse().ok()
}

/// A key token: decimal `u64`, excluding the reserved key 0.
fn parse_key(tok: &str) -> Option<u64> {
    match parse_u64(tok.as_bytes()) {
        Some(0) | None => None,
        k => k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses `input` fed whole, collecting commands until exhaustion.
    fn parse_all(input: &[u8]) -> (Vec<Command>, Option<Fatal>) {
        let mut p = Parser::new();
        p.feed(input);
        let mut cmds = Vec::new();
        loop {
            match p.next_command() {
                Ok(Some(c)) => cmds.push(c),
                Ok(None) => return (cmds, None),
                Err(f) => return (cmds, Some(f)),
            }
        }
    }

    #[test]
    fn basic_commands_parse() {
        let (cmds, fatal) = parse_all(
            b"set 7 0 0 2\r\n42\r\nget 7 8\r\ndelete 7 noreply\r\nadd 9 1 0 1\r\n5\r\n\
              replace 9 0 0 1 noreply\r\n6\r\nversion\r\nstats\r\nquit\r\n",
        );
        assert_eq!(fatal, None);
        assert_eq!(
            cmds,
            vec![
                Command::Set { key: 7, value: 42, noreply: false },
                Command::Get { keys: vec![7, 8] },
                Command::Delete { key: 7, noreply: true },
                Command::Add { key: 9, value: 5, noreply: false },
                Command::Replace { key: 9, value: 6, noreply: true },
                Command::Version,
                Command::Stats,
                Command::Quit,
            ]
        );
    }

    #[test]
    fn fragmentation_is_invisible() {
        let input = b"set 123 0 0 3\r\n456\r\nget 123\r\n";
        let (whole, _) = parse_all(input);
        for step in 1..input.len() {
            let mut p = Parser::new();
            let mut cmds = Vec::new();
            for chunk in input.chunks(step) {
                p.feed(chunk);
                while let Ok(Some(c)) = p.next_command() {
                    cmds.push(c);
                }
            }
            assert_eq!(cmds, whole, "chunk size {step}");
        }
    }

    #[test]
    fn bad_key_swallows_data_block() {
        // The malformed set still consumes its 3-byte block, so the
        // following get parses cleanly.
        let (cmds, fatal) = parse_all(b"set frog 0 0 3\r\nxyz\r\nget 1\r\n");
        assert_eq!(fatal, None);
        assert_eq!(cmds.len(), 2);
        assert!(matches!(cmds[0], Command::Bad { line, noreply: false } if line == BAD_KEY));
        assert_eq!(cmds[1], Command::Get { keys: vec![1] });
    }

    #[test]
    fn unparseable_bytes_count_degrades_to_error() {
        let (cmds, fatal) = parse_all(b"set 1 0 0 banana\r\nget 2\r\n");
        assert_eq!(fatal, None);
        assert!(matches!(cmds[0], Command::Bad { line: "ERROR", .. }));
        assert_eq!(cmds[1], Command::Get { keys: vec![2] });
    }

    #[test]
    fn bad_data_chunk_is_fatal() {
        let (cmds, fatal) = parse_all(b"set 1 0 0 2\r\n12345\r\n");
        assert!(cmds.is_empty());
        assert_eq!(fatal, Some(Fatal("CLIENT_ERROR bad data chunk")));
    }

    #[test]
    fn dead_parser_ignores_further_input() {
        let mut p = Parser::new();
        p.feed(b"set 1 0 0 2\r\nxx!\r\n");
        assert!(p.next_command().is_err());
        p.feed(b"get 1\r\n");
        assert_eq!(p.next_command(), Ok(None));
    }

    #[test]
    fn overlong_line_is_fatal_even_with_late_newline() {
        let mut long = vec![b'g'; MAX_LINE + 10];
        long.extend_from_slice(b"\r\n");
        let (_, fatal) = parse_all(&long);
        assert_eq!(fatal, Some(Fatal("CLIENT_ERROR line too long")));
        // And without any newline at all.
        let (_, fatal) = parse_all(&vec![b'x'; MAX_LINE + 1]);
        assert_eq!(fatal, Some(Fatal("CLIENT_ERROR line too long")));
    }

    #[test]
    fn key_zero_and_overflow_are_rejected() {
        let (cmds, _) =
            parse_all(b"get 0\r\nget 18446744073709551616\r\nget 18446744073709551615\r\n");
        assert!(matches!(cmds[0], Command::Bad { .. }));
        assert!(matches!(cmds[1], Command::Bad { .. }));
        assert_eq!(cmds[2], Command::Get { keys: vec![u64::MAX] });
    }

    #[test]
    fn noreply_suppression_is_carried_through_deferred_errors() {
        let (cmds, _) = parse_all(b"set 0 0 0 1 noreply\r\nx\r\n");
        assert!(matches!(cmds[0], Command::Bad { noreply: true, .. }));
    }

    #[test]
    fn value_validation_happens_after_framing() {
        let (cmds, fatal) = parse_all(b"set 5 0 0 3\r\nx2z\r\nget 5\r\n");
        assert_eq!(fatal, None);
        assert!(matches!(cmds[0], Command::Bad { line, .. } if line == BAD_VALUE));
        assert_eq!(cmds[1], Command::Get { keys: vec![5] });
    }

    #[test]
    fn oversized_object_is_fatal() {
        let (_, fatal) = parse_all(format!("set 1 0 0 {}\r\n", MAX_DATA + 1).as_bytes());
        assert_eq!(fatal, Some(Fatal("CLIENT_ERROR object too large for cache")));
    }

    #[test]
    fn blank_and_unknown_lines_error_and_recover() {
        let (cmds, fatal) = parse_all(b"\r\nfrobnicate 1 2\r\nget 3\r\n");
        assert_eq!(fatal, None);
        assert!(matches!(cmds[0], Command::Bad { line: "ERROR", .. }));
        assert!(matches!(cmds[1], Command::Bad { line: "ERROR", .. }));
        assert_eq!(cmds[2], Command::Get { keys: vec![3] });
    }
}

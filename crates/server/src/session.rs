//! One client connection's request/response state machine, decoupled
//! from the transport.
//!
//! A [`Session`] owns a [`Parser`], a per-connection [`ShardedCtx`] and
//! a write-batch buffer: the server (or a test) pushes whatever bytes
//! the transport produced through [`Session::input`], and every
//! complete pipelined command in them is executed immediately, its
//! response appended to the batch. The transport then flushes
//! [`Session::output`] with a single write — per-connection write
//! batching falls out of the structure instead of needing a timer.
//!
//! Because the session is transport-free, the proptest suite can drive
//! it directly: the same byte stream, however fragmented, must produce
//! byte-identical output.

use std::io::Write;

use nvmemcached::sharded::{ShardedCtx, ShardedNvMemcached};

use crate::protocol::{Command, Fatal, Parser};

/// A connection's protocol state bound to the shared cache.
pub struct Session<'a> {
    cache: &'a ShardedNvMemcached,
    ctx: ShardedCtx,
    parser: Parser,
    out: Vec<u8>,
    open: bool,
}

impl<'a> Session<'a> {
    /// Opens a session: registers the calling thread with every shard.
    pub fn new(cache: &'a ShardedNvMemcached) -> Self {
        Self { cache, ctx: cache.register(), parser: Parser::new(), out: Vec::new(), open: true }
    }

    /// Feeds transport bytes, executing every complete command and
    /// appending the batched responses to [`Session::output`]. Returns
    /// `false` once the connection should be closed after flushing the
    /// output (`quit`, or an unrecoverable protocol error).
    pub fn input(&mut self, bytes: &[u8]) -> bool {
        if !self.open {
            return false;
        }
        self.parser.feed(bytes);
        loop {
            match self.parser.next_command() {
                Ok(Some(cmd)) => {
                    if !self.exec(cmd) {
                        self.open = false;
                        break;
                    }
                }
                Ok(None) => break,
                Err(Fatal(line)) => {
                    self.line(line);
                    self.open = false;
                    break;
                }
            }
        }
        self.open
    }

    /// The accumulated response batch (flush with one write, then
    /// [`Session::clear_output`]).
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Discards the flushed batch.
    pub fn clear_output(&mut self) {
        self.out.clear();
    }

    /// Whether the connection is still open.
    pub fn is_open(&self) -> bool {
        self.open
    }

    fn line(&mut self, s: &str) {
        self.out.extend_from_slice(s.as_bytes());
        self.out.extend_from_slice(b"\r\n");
    }

    /// Executes one command; `false` means close after flushing.
    fn exec(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::Set { key, value, noreply } => {
                let r = self.cache.set(&mut self.ctx, key, value);
                if !noreply {
                    match r {
                        Ok(()) => self.line("STORED"),
                        Err(_) => self.line("SERVER_ERROR out of memory storing object"),
                    }
                }
            }
            Command::Add { key, value, noreply } => {
                let r = self.cache.add(&mut self.ctx, key, value);
                if !noreply {
                    match r {
                        Ok(true) => self.line("STORED"),
                        Ok(false) => self.line("NOT_STORED"),
                        Err(_) => self.line("SERVER_ERROR out of memory storing object"),
                    }
                }
            }
            Command::Replace { key, value, noreply } => {
                let r = self.cache.replace(&mut self.ctx, key, value);
                if !noreply {
                    match r {
                        Ok(true) => self.line("STORED"),
                        Ok(false) => self.line("NOT_STORED"),
                        Err(_) => self.line("SERVER_ERROR out of memory storing object"),
                    }
                }
            }
            Command::Get { keys } => {
                for key in keys {
                    if let Some(value) = self.cache.get(&mut self.ctx, key) {
                        let data = value.to_string();
                        let _ = write!(self.out, "VALUE {key} 0 {}\r\n{data}\r\n", data.len());
                    }
                }
                self.line("END");
            }
            Command::Delete { key, noreply } => {
                let hit = self.cache.delete(&mut self.ctx, key).is_some();
                if !noreply {
                    self.line(if hit { "DELETED" } else { "NOT_FOUND" });
                }
            }
            Command::Stats => {
                self.line(&format!("STAT shards {}", self.cache.n_shards()));
                self.line(&format!("STAT curr_items {}", self.cache.len()));
                self.line("END");
            }
            Command::StatsReshard => {
                let top = self.cache.topology_stats();
                self.line(&format!("STAT topology_version {}", top.version));
                self.line(&format!("STAT shards {}", top.n_shards));
                self.line(&format!(
                    "STAT router {}",
                    match top.router {
                        nvmemcached::Router::Hash => "hash",
                        nvmemcached::Router::Range => "range",
                    }
                ));
                match top.reshard {
                    None => self.line("STAT reshard_in_flight 0"),
                    Some(p) => {
                        self.line("STAT reshard_in_flight 1");
                        self.line(&format!("STAT reshard_from {}", p.from));
                        self.line(&format!("STAT reshard_to {}", p.to));
                        self.line(&format!("STAT reshard_cursor {}", p.cursor));
                        self.line(&format!("STAT reshard_target_version {}", p.version));
                    }
                }
                self.line("END");
            }
            Command::Version => {
                self.line(concat!("VERSION nvram-logfree/", env!("CARGO_PKG_VERSION")));
            }
            Command::Quit => return false,
            Command::Bad { line, noreply } => {
                if !noreply {
                    self.line(line);
                }
            }
        }
        true
    }
}

//! One client connection's request/response state machine, decoupled
//! from the transport **and** from thread ownership.
//!
//! A [`Session`] owns a [`Parser`] and a write-batch buffer: the server
//! (or a test) pushes whatever bytes the transport produced through
//! [`Session::input`], and every complete pipelined command in them is
//! executed immediately, its response appended to the batch. The
//! transport then flushes [`Session::output`] — in one write when the
//! client keeps up, in as many partial writes as backpressure dictates
//! when it does not (the consumed prefix is tracked by the caller; see
//! `net.rs`).
//!
//! The session does **not** own a [`ShardedCtx`]: per-shard contexts
//! are a property of the *serving thread*, not the connection, so the
//! event-driven server creates one context set per worker and passes it
//! to every session it multiplexes. The blocking fallback (and the
//! tests) simply register one context per connection and pass that.
//!
//! Because the session is transport-free, the proptest suite can drive
//! it directly: the same byte stream, however fragmented, must produce
//! byte-identical output.

use std::io::Write;
use std::sync::Arc;

use nvmemcached::sharded::{ShardedCtx, ShardedNvMemcached};

use crate::net::ServerStats;
use crate::protocol::{Command, Fatal, Parser};

/// A connection's protocol state bound to the shared cache.
pub struct Session<'a> {
    cache: &'a ShardedNvMemcached,
    parser: Parser,
    out: Vec<u8>,
    open: bool,
    /// Server-wide observability counters surfaced by `stats`; absent
    /// when the session is driven without a server (tests, tools).
    stats: Option<Arc<ServerStats>>,
}

impl<'a> Session<'a> {
    /// Opens a session over `cache`.
    pub fn new(cache: &'a ShardedNvMemcached) -> Self {
        Self { cache, parser: Parser::new(), out: Vec::new(), open: true, stats: None }
    }

    /// Opens a session that reports the server's connection and byte
    /// counters in its `stats` response.
    pub fn with_stats(cache: &'a ShardedNvMemcached, stats: Arc<ServerStats>) -> Self {
        Self { stats: Some(stats), ..Self::new(cache) }
    }

    /// Feeds transport bytes, executing every complete command against
    /// `ctx` and appending the batched responses to [`Session::output`].
    /// Returns `false` once the connection should be closed after
    /// flushing the output (`quit`, or an unrecoverable protocol error).
    pub fn input(&mut self, bytes: &[u8], ctx: &mut ShardedCtx) -> bool {
        if !self.open {
            return false;
        }
        self.parser.feed(bytes);
        loop {
            match self.parser.next_command() {
                Ok(Some(cmd)) => {
                    if !self.exec(cmd, ctx) {
                        self.open = false;
                        break;
                    }
                }
                Ok(None) => break,
                Err(Fatal(line)) => {
                    self.line(line);
                    self.open = false;
                    break;
                }
            }
        }
        self.open
    }

    /// The accumulated response batch. The transport flushes as much as
    /// the socket accepts and reports the consumed prefix back through
    /// [`Session::consume_output`]; tests flush everything and call
    /// [`Session::clear_output`].
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Discards the whole flushed batch.
    pub fn clear_output(&mut self) {
        self.out.clear();
    }

    /// Discards the flushed `n`-byte prefix of the batch, keeping the
    /// unsent remainder for the next writable window (partial-write
    /// backpressure).
    pub fn consume_output(&mut self, n: usize) {
        self.out.drain(..n);
    }

    /// Whether the connection is still open.
    pub fn is_open(&self) -> bool {
        self.open
    }

    fn line(&mut self, s: &str) {
        self.out.extend_from_slice(s.as_bytes());
        self.out.extend_from_slice(b"\r\n");
    }

    /// Executes one command; `false` means close after flushing.
    fn exec(&mut self, cmd: Command, ctx: &mut ShardedCtx) -> bool {
        match cmd {
            Command::Set { key, value, noreply } => {
                let r = self.cache.set(ctx, key, value);
                if !noreply {
                    match r {
                        Ok(()) => self.line("STORED"),
                        Err(_) => self.line("SERVER_ERROR out of memory storing object"),
                    }
                }
            }
            Command::Add { key, value, noreply } => {
                let r = self.cache.add(ctx, key, value);
                if !noreply {
                    match r {
                        Ok(true) => self.line("STORED"),
                        Ok(false) => self.line("NOT_STORED"),
                        Err(_) => self.line("SERVER_ERROR out of memory storing object"),
                    }
                }
            }
            Command::Replace { key, value, noreply } => {
                let r = self.cache.replace(ctx, key, value);
                if !noreply {
                    match r {
                        Ok(true) => self.line("STORED"),
                        Ok(false) => self.line("NOT_STORED"),
                        Err(_) => self.line("SERVER_ERROR out of memory storing object"),
                    }
                }
            }
            Command::Get { keys } => {
                for key in keys {
                    if let Some(value) = self.cache.get(ctx, key) {
                        let data = value.to_string();
                        let _ = write!(self.out, "VALUE {key} 0 {}\r\n{data}\r\n", data.len());
                    }
                }
                self.line("END");
            }
            Command::Delete { key, noreply } => {
                let hit = self.cache.delete(ctx, key).is_some();
                if !noreply {
                    self.line(if hit { "DELETED" } else { "NOT_FOUND" });
                }
            }
            Command::Stats => {
                self.line(&format!("STAT shards {}", self.cache.n_shards()));
                self.line(&format!("STAT curr_items {}", self.cache.len()));
                if let Some(stats) = self.stats.clone() {
                    self.line(&format!("STAT curr_connections {}", stats.conns()));
                    self.line(&format!("STAT total_connections {}", stats.accepts()));
                    self.line(&format!("STAT bytes_read {}", stats.bytes_read()));
                    self.line(&format!("STAT bytes_written {}", stats.bytes_written()));
                }
                self.line("END");
            }
            Command::StatsReshard => {
                let top = self.cache.topology_stats();
                self.line(&format!("STAT topology_version {}", top.version));
                self.line(&format!("STAT shards {}", top.n_shards));
                self.line(&format!(
                    "STAT router {}",
                    match top.router {
                        nvmemcached::Router::Hash => "hash",
                        nvmemcached::Router::Range => "range",
                    }
                ));
                match top.reshard {
                    None => self.line("STAT reshard_in_flight 0"),
                    Some(p) => {
                        self.line("STAT reshard_in_flight 1");
                        self.line(&format!("STAT reshard_from {}", p.from));
                        self.line(&format!("STAT reshard_to {}", p.to));
                        self.line(&format!("STAT reshard_cursor {}", p.cursor));
                        self.line(&format!("STAT reshard_target_version {}", p.version));
                    }
                }
                self.line("END");
            }
            Command::Version => {
                self.line(concat!("VERSION nvram-logfree/", env!("CARGO_PKG_VERSION")));
            }
            Command::Quit => return false,
            Command::Bad { line, noreply } => {
                if !noreply {
                    self.line(line);
                }
            }
        }
        true
    }
}

//! The TCP front-end: a thread-per-core **event-driven readiness loop**
//! multiplexing many non-blocking connections per worker, with a
//! blocking thread-per-connection fallback for targets without epoll.
//!
//! # Threading model (event-driven, the default on Linux)
//!
//! `N` worker threads (default: one per shard — shards are the unit of
//! parallelism everywhere else in the system) each own one
//! [`sys::Epoll`] instance and serve *many* connections concurrently:
//!
//! * The shared **listener** is registered in every worker's epoll set
//!   (with `EPOLLEXCLUSIVE` where the kernel supports it, so one
//!   connection wakes one worker, not all of them); accepted sockets
//!   are made non-blocking and stay with the accepting worker for
//!   their lifetime — no cross-worker handoff, no shared connection
//!   state.
//! * Each worker registers **one set of per-shard
//!   [`nvalloc::ThreadCtx`]s** ([`ShardedCtx`]) and reuses it for every
//!   session it multiplexes. Contexts scale with *cores*, not
//!   *connections* — 256 connections on a 4-shard server cost 4 worker
//!   context sets, not 256.
//! * The [`Session`] state machine is readiness-agnostic by
//!   construction (responses are a function of the cumulative byte
//!   stream, never the fragmentation), so incremental reads slot in
//!   unchanged. The **write path** has real backpressure: a partial
//!   write parks the unsent output in the session's batch buffer,
//!   arms `EPOLLOUT`, and resumes when the socket drains; a connection
//!   with more than [`HIGH_WATER`] parked bytes stops being *read*
//!   until the client catches up, bounding per-connection memory.
//! * **Shutdown** is a self-pipe wakeup: each worker has a
//!   `UnixStream` pair in its epoll set and [`Server::shutdown`]
//!   writes one byte to each — no throwaway loopback connections, no
//!   reliance on accept timeouts.
//!
//! # Blocking fallback
//!
//! With [`ServerConfig::event_loop`] unset (or on targets where
//! [`sys::SUPPORTED`] is false) the server keeps the original model:
//! each worker blocks in `accept`, serves its connection to completion
//! with one per-connection context, and polls the stop flag through a
//! read timeout. One worker serves one connection at a time — callers
//! expecting `C` concurrent connections must size
//! [`ServerConfig::workers`] to at least `C` in this mode.
//!
//! In both modes, once every worker has joined, the cache is
//! [quiesced](ShardedNvMemcached::quiesce) — a durability barrier over
//! every shard pool — before the `Arc` is handed back, so a caller
//! that immediately drops (or crash-captures) the pools observes a
//! clean durable image.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use nvmemcached::sharded::{ShardedCtx, ShardedNvMemcached};

use crate::session::Session;
use crate::sys::{self, Epoll, EpollEvent};

/// A connection whose parked (unflushable) output exceeds this stops
/// being read until the client drains it — per-connection memory stays
/// bounded no matter how fast requests are pipelined at a slow reader.
pub const HIGH_WATER: usize = 64 * 1024;

/// Volatile server-wide observability counters, reported over the wire
/// by the `stats` command and readable in-process via
/// [`Server::stats`]. Never persisted; a restart starts from zero.
#[derive(Debug, Default)]
pub struct ServerStats {
    conns: AtomicU64,
    accepts: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl ServerStats {
    /// Connections currently open.
    pub fn conns(&self) -> u64 {
        self.conns.load(Ordering::Relaxed)
    }

    /// Connections accepted over the server's lifetime.
    pub fn accepts(&self) -> u64 {
        self.accepts.load(Ordering::Relaxed)
    }

    /// Request bytes read off sockets.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Response bytes written to sockets.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    fn on_accept(&self) {
        self.accepts.fetch_add(1, Ordering::Relaxed);
        self.conns.fetch_add(1, Ordering::Relaxed);
    }

    fn on_close(&self) {
        self.conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Tuning for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (use port 0 for an ephemeral port; read the
    /// actual one back from [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Worker threads. `None` pins one worker per shard.
    pub workers: Option<usize>,
    /// Blocking fallback only: read timeout through which serving
    /// workers poll the shutdown flag. Bounds shutdown latency, not
    /// request latency.
    pub poll: Duration,
    /// Use the epoll readiness loop (the default where
    /// [`sys::SUPPORTED`]). `false` selects the blocking
    /// thread-per-connection model, which then needs
    /// [`ServerConfig::workers`] ≥ the expected concurrent
    /// connections.
    pub event_loop: bool,
    /// Test instrumentation: cap every socket read at this many bytes,
    /// forcing the readiness loop through maximal fragmentation.
    /// `None` in production.
    pub read_cap: Option<usize>,
    /// Test instrumentation: cap every socket write at this many
    /// bytes, forcing partial writes and the `EPOLLOUT` backpressure
    /// path. `None` in production.
    pub write_cap: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: None,
            poll: Duration::from_millis(20),
            event_loop: sys::SUPPORTED,
            read_cap: None,
            write_cap: None,
        }
    }
}

/// A running server: join handles plus the shared shutdown plumbing.
pub struct Server {
    cache: Arc<ShardedNvMemcached>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    workers: Vec<JoinHandle<()>>,
    /// Write ends of the event workers' self-pipes (empty in blocking
    /// mode).
    wakers: Vec<UnixStream>,
    event_loop: bool,
}

impl Server {
    /// Binds and starts serving `cache` with the default config on an
    /// ephemeral loopback port.
    pub fn start_local(cache: Arc<ShardedNvMemcached>) -> std::io::Result<Server> {
        Self::start(cache, ServerConfig::default())
    }

    /// Binds `cfg.addr` and spawns the worker threads.
    pub fn start(cache: Arc<ShardedNvMemcached>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let n_workers = cfg.workers.unwrap_or_else(|| cache.n_shards()).max(1);
        let event_loop = cfg.event_loop && sys::SUPPORTED;
        let mut workers = Vec::with_capacity(n_workers);
        let mut wakers = Vec::new();
        for _ in 0..n_workers {
            let listener = listener.try_clone()?;
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            if event_loop {
                // All registration that can fail happens here, so a
                // misconfigured host errors out of `start` instead of
                // dying silently on a worker thread.
                listener.set_nonblocking(true)?;
                let ep = Epoll::create()?;
                let fd = listener.as_raw_fd();
                if ep.add(fd, sys::EPOLLIN | sys::EPOLLEXCLUSIVE, TOKEN_LISTENER).is_err() {
                    // Pre-4.5 kernels reject EPOLLEXCLUSIVE; plain
                    // level-triggered wakeups merely herd harder.
                    ep.add(fd, sys::EPOLLIN, TOKEN_LISTENER)?;
                }
                let (wake_tx, wake_rx) = UnixStream::pair()?;
                wake_rx.set_nonblocking(true)?;
                ep.add(wake_rx.as_raw_fd(), sys::EPOLLIN, TOKEN_WAKE)?;
                wakers.push(wake_tx);
                let caps = (cfg.read_cap, cfg.write_cap);
                workers.push(std::thread::spawn(move || {
                    event_worker(ep, listener, wake_rx, &cache, &stop, &stats, caps);
                }));
            } else {
                let poll = cfg.poll;
                workers.push(std::thread::spawn(move || {
                    blocking_worker(&listener, &cache, &stop, &stats, poll);
                }));
            }
        }
        Ok(Server { cache, addr, stop, stats, workers, wakers, event_loop })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's volatile observability counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Graceful shutdown: stop accepting, wake and drain the workers,
    /// quiesce the cache (durability barrier over every shard pool),
    /// and hand the cache back for post-shutdown use (snapshotting,
    /// recovery drills, pool teardown).
    pub fn shutdown(mut self) -> Arc<ShardedNvMemcached> {
        self.stop.store(true, Ordering::SeqCst);
        if self.event_loop {
            // Self-pipe: one byte per worker lands in its epoll set.
            for w in &mut self.wakers {
                let _ = w.write_all(b"q");
            }
        } else {
            // Blocking fallback: a worker parked in accept wakes on a
            // throwaway loopback connection, sees the flag, and exits
            // without serving. Workers mid-connection exit through
            // their read timeout and never consume a wakeup; surplus
            // wakeups die with the listener clones when workers join.
            for _ in &self.workers {
                let _ = TcpStream::connect(self.addr);
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.cache.quiesce();
        Arc::clone(&self.cache)
    }
}

// ---------------------------------------------------------------------------
// Event-driven worker
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// One multiplexed connection: its socket, protocol state, and the
/// epoll interest currently registered for it.
struct Conn<'a> {
    stream: TcpStream,
    session: Session<'a>,
    interest: u32,
}

impl Conn<'_> {
    /// The interest this connection *should* have: readable while the
    /// session is open and the parked output is under the high-water
    /// mark; writable while any output is parked.
    fn wanted_interest(&self) -> u32 {
        let mut want = 0;
        if self.session.is_open() && self.session.output().len() < HIGH_WATER {
            want |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if !self.session.output().is_empty() {
            want |= sys::EPOLLOUT;
        }
        want
    }

    /// Finished: nothing left to flush and the session is closed.
    fn done(&self) -> bool {
        !self.session.is_open() && self.session.output().is_empty()
    }
}

/// The readiness loop: one epoll instance, one `ShardedCtx`, many
/// connections.
fn event_worker(
    ep: Epoll,
    listener: TcpListener,
    wake_rx: UnixStream,
    cache: &ShardedNvMemcached,
    stop: &AtomicBool,
    stats: &Arc<ServerStats>,
    (read_cap, write_cap): (Option<usize>, Option<usize>),
) {
    let mut ctx = cache.register();
    let mut conns: HashMap<u64, Conn<'_>> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events = [EpollEvent::default(); 64];
    let mut rbuf = [0u8; 16 * 1024];

    'serve: loop {
        let n = match ep.wait(&mut events, -1) {
            Ok(n) => n,
            Err(_) => break 'serve,
        };
        for ev in &events[..n] {
            match ev.token() {
                TOKEN_LISTENER => {
                    accept_ready(&ep, &listener, cache, stats, &mut conns, &mut next_token);
                }
                TOKEN_WAKE => {
                    // Drain the pipe; the flag (checked below) is the
                    // actual signal.
                    let mut sink = [0u8; 16];
                    while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        // A later event for a connection an earlier
                        // event in this same batch already closed.
                        continue;
                    };
                    let alive = serve_ready(
                        conn,
                        ev.events(),
                        &mut ctx,
                        stats,
                        &mut rbuf,
                        (read_cap, write_cap),
                    );
                    if !alive {
                        close_conn(conns.remove(&token).expect("present"), &mut ctx, stats);
                    } else {
                        update_interest(&ep, conns.get_mut(&token).expect("present"), token);
                    }
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            break 'serve;
        }
    }
    // Graceful exit: one best-effort non-blocking flush per connection,
    // then close. (Dropping the sockets deregisters them from epoll.)
    for (_, mut conn) in conns.drain() {
        let _ = flush_session(&mut conn.stream, &mut conn.session, stats, write_cap);
        close_conn(conn, &mut ctx, stats);
    }
}

/// Accepts every pending connection (the listener is level-triggered
/// and non-blocking: drain until `WouldBlock`).
fn accept_ready<'a>(
    ep: &Epoll,
    listener: &TcpListener,
    cache: &'a ShardedNvMemcached,
    stats: &Arc<ServerStats>,
    conns: &mut HashMap<u64, Conn<'a>>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                let conn = Conn {
                    stream,
                    session: Session::with_stats(cache, Arc::clone(stats)),
                    interest: sys::EPOLLIN | sys::EPOLLRDHUP,
                };
                if ep.add(conn.stream.as_raw_fd(), conn.interest, token).is_ok() {
                    stats.on_accept();
                    conns.insert(token, conn);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // Transient accept errors (e.g. the peer reset before the
            // handshake finished) don't take the worker down.
            Err(_) => return,
        }
    }
}

/// Handles one readiness notification for one connection. Returns
/// `false` when the connection must be closed.
fn serve_ready(
    conn: &mut Conn<'_>,
    events: u32,
    ctx: &mut ShardedCtx,
    stats: &ServerStats,
    rbuf: &mut [u8],
    (read_cap, write_cap): (Option<usize>, Option<usize>),
) -> bool {
    if events & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
        return false;
    }
    // Writable first: freeing parked output may re-enable reading.
    if events & sys::EPOLLOUT != 0 || !conn.session.output().is_empty() {
        match flush_session(&mut conn.stream, &mut conn.session, stats, write_cap) {
            Ok(_) => {}
            Err(_) => return false,
        }
    }
    if events & sys::EPOLLIN != 0 && conn.session.is_open() {
        loop {
            let cap = read_cap.unwrap_or(rbuf.len()).clamp(1, rbuf.len());
            match conn.stream.read(&mut rbuf[..cap]) {
                Ok(0) => return false, // EOF: peer closed
                Ok(n) => {
                    stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                    let keep_open = conn.session.input(&rbuf[..n], ctx);
                    // Optimistic flush: most responses fit the socket
                    // buffer and never need EPOLLOUT at all.
                    if flush_session(&mut conn.stream, &mut conn.session, stats, write_cap).is_err()
                    {
                        return false;
                    }
                    if !keep_open {
                        break;
                    }
                    // Backpressure: a slow reader pipelining requests
                    // must not grow the parked batch without bound.
                    if conn.session.output().len() >= HIGH_WATER {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
    !conn.done()
}

/// Re-registers the connection when its wanted interest changed (e.g.
/// parked output now needs `EPOLLOUT`, or draining it re-enabled
/// `EPOLLIN`).
fn update_interest(ep: &Epoll, conn: &mut Conn<'_>, token: u64) {
    let want = conn.wanted_interest();
    if want != conn.interest {
        conn.interest = want;
        let _ = ep.modify(conn.stream.as_raw_fd(), want, token);
    }
}

/// Closes a connection: the socket drop deregisters it from epoll; the
/// worker context's per-connection request tallies are published so
/// `shard_requests` stays live while the worker keeps running.
fn close_conn(conn: Conn<'_>, ctx: &mut ShardedCtx, stats: &ServerStats) {
    drop(conn);
    ctx.flush_tallies();
    stats.on_close();
}

/// Flushes as much of the session's parked output as the socket
/// accepts, consuming exactly the written prefix. `Ok(true)` = fully
/// drained, `Ok(false)` = the socket pushed back (arm `EPOLLOUT`).
fn flush_session(
    stream: &mut TcpStream,
    session: &mut Session<'_>,
    stats: &ServerStats,
    write_cap: Option<usize>,
) -> std::io::Result<bool> {
    let mut written = 0;
    let r = flush_pending(stream, session.output(), &mut written, write_cap);
    stats.bytes_written.fetch_add(written as u64, Ordering::Relaxed);
    session.consume_output(written);
    match r {
        Ok(FlushProgress::Done) => Ok(true),
        Ok(FlushProgress::Blocked) => Ok(false),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Short-write-safe flushing (shared by both serving models)
// ---------------------------------------------------------------------------

/// Outcome of [`flush_pending`]: either the buffer fully drained, or
/// the sink pushed back mid-buffer and the caller must retry later
/// from the updated `written` cursor.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum FlushProgress {
    /// Everything after the initial cursor was written.
    Done,
    /// The sink returned `WouldBlock`; `written` marks the resume
    /// point. Nothing was lost.
    Blocked,
}

/// Writes `buf[*written..]` to `w`, advancing `written` past every
/// accepted byte. Short writes loop, `Interrupted` retries,
/// `WouldBlock` parks ([`FlushProgress::Blocked`]) — a slow client is
/// never an error and never loses bytes. `cap` (test instrumentation)
/// bounds each individual write call.
pub(crate) fn flush_pending(
    w: &mut impl Write,
    buf: &[u8],
    written: &mut usize,
    cap: Option<usize>,
) -> std::io::Result<FlushProgress> {
    while *written < buf.len() {
        let end = cap.map_or(buf.len(), |c| (*written + c.max(1)).min(buf.len()));
        match w.write(&buf[*written..end]) {
            Ok(0) => return Err(std::io::Error::new(ErrorKind::WriteZero, "socket wrote zero")),
            Ok(n) => *written += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(FlushProgress::Blocked),
            Err(e) => return Err(e),
        }
    }
    Ok(FlushProgress::Done)
}

// ---------------------------------------------------------------------------
// Blocking fallback worker
// ---------------------------------------------------------------------------

fn blocking_worker(
    listener: &TcpListener,
    cache: &ShardedNvMemcached,
    stop: &AtomicBool,
    stats: &Arc<ServerStats>,
    poll: Duration,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                stats.on_accept();
                serve_blocking(stream, cache, stop, stats, poll);
                stats.on_close();
            }
            // Transient accept errors don't take the worker down.
            Err(_) => continue,
        }
    }
}

/// Serves one connection to completion: read, execute the batch, flush
/// the batch (retrying partial writes until it drains).
fn serve_blocking(
    stream: TcpStream,
    cache: &ShardedNvMemcached,
    stop: &AtomicBool,
    stats: &Arc<ServerStats>,
    poll: Duration,
) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(poll)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    // The blocking model's context is per-connection: the thread *is*
    // the connection for its whole lifetime.
    let mut ctx = cache.register();
    let mut session = Session::with_stats(cache, Arc::clone(stats));
    let mut buf = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                let keep_open = session.input(&buf[..n], &mut ctx);
                // Blocking socket: WouldBlock can't happen, but short
                // writes can — loop until the whole batch drained.
                while !session.output().is_empty() {
                    if flush_session(&mut stream, &mut session, stats, None).is_err() {
                        return;
                    }
                }
                if !keep_open {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Write` that accepts at most `cap` bytes per call and returns
    /// `WouldBlock` at scripted points — the slow-client socket in
    /// miniature.
    struct CappedSink {
        accepted: Vec<u8>,
        cap: usize,
        /// After this many successful writes, the next call blocks
        /// once.
        block_after: Option<usize>,
        writes: usize,
    }

    impl Write for CappedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.block_after == Some(self.writes) {
                self.block_after = None;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            self.writes += 1;
            let n = buf.len().min(self.cap);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_drain_without_losing_bytes() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut sink = CappedSink { accepted: Vec::new(), cap: 7, block_after: None, writes: 0 };
        let mut written = 0;
        let r = flush_pending(&mut sink, &payload, &mut written, None).expect("no error");
        assert_eq!(r, FlushProgress::Done);
        assert_eq!(written, payload.len());
        assert_eq!(sink.accepted, payload, "every byte arrived, in order");
    }

    #[test]
    fn would_block_parks_and_resumes_exactly_where_it_stopped() {
        let payload: Vec<u8> = (0..200u8).collect();
        let mut sink =
            CappedSink { accepted: Vec::new(), cap: 16, block_after: Some(3), writes: 0 };
        let mut written = 0;
        // First attempt: 3 writes of 16 land, then the sink blocks.
        let r = flush_pending(&mut sink, &payload, &mut written, None).expect("no error");
        assert_eq!(r, FlushProgress::Blocked);
        assert_eq!(written, 48, "cursor marks the resume point");
        assert_eq!(sink.accepted, &payload[..48], "nothing dropped, nothing duplicated");
        // Resume from the cursor: the remainder drains.
        let r = flush_pending(&mut sink, &payload, &mut written, None).expect("no error");
        assert_eq!(r, FlushProgress::Done);
        assert_eq!(sink.accepted, payload);
    }

    #[test]
    fn write_cap_bounds_each_call_without_changing_the_outcome() {
        let payload: Vec<u8> = (0..100u8).collect();
        let mut sink = CappedSink { accepted: Vec::new(), cap: 1024, block_after: None, writes: 0 };
        let mut written = 0;
        let r = flush_pending(&mut sink, &payload, &mut written, Some(3)).expect("no error");
        assert_eq!(r, FlushProgress::Done);
        assert_eq!(sink.accepted, payload);
        assert!(sink.writes >= 34, "the cap forced many small writes, got {}", sink.writes);
    }

    #[test]
    fn zero_length_write_is_an_error_not_a_spin() {
        struct ZeroSink;
        impl Write for ZeroSink {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut written = 0;
        let err = flush_pending(&mut ZeroSink, b"abc", &mut written, None).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WriteZero);
    }

    #[test]
    fn empty_buffer_is_instantly_done() {
        let mut sink = CappedSink { accepted: Vec::new(), cap: 1, block_after: None, writes: 0 };
        let mut written = 0;
        let r = flush_pending(&mut sink, b"", &mut written, None).expect("no error");
        assert_eq!(r, FlushProgress::Done);
        assert_eq!(sink.writes, 0);
    }
}

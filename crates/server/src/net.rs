//! The TCP front-end: a thread-per-core accept loop over a shared
//! listener, one [`Session`] per connection, and a graceful shutdown
//! that quiesces the cache before the pools can be dropped.
//!
//! # Threading model
//!
//! `N` worker threads (default: one per shard, the "pinned to the shard
//! topology" setting — shards are the unit of parallelism everywhere
//! else in the system) each block in `accept` on a clone of one shared
//! listener; the kernel load-balances incoming connections across them.
//! A worker serves its accepted connection to completion, then returns
//! to `accept`. Each connection gets its own [`Session`] (and therefore
//! its own per-shard [`nvalloc::ThreadCtx`]s, created on the serving
//! thread), so the data path is identical to the in-process harness:
//! no cross-connection locks, no shared parser state.
//!
//! One worker serves one connection at a time — callers expecting `C`
//! concurrent connections should size [`ServerConfig::workers`] to at
//! least `C` (the open-loop client does).
//!
//! # Shutdown
//!
//! [`Server::shutdown`] flips a flag, then wakes every accept-blocked
//! worker with a throwaway loopback connection. Workers serving live
//! connections notice the flag through their read timeout, flush any
//! batched output and close. Once every worker has joined (dropping its
//! session flushes the per-shard request tallies), the cache is
//! [quiesced](ShardedNvMemcached::quiesce) — a durability barrier over
//! every shard pool — before the `Arc` is handed back, so a caller that
//! immediately drops (or crash-captures) the pools observes a clean
//! durable image.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use nvmemcached::sharded::ShardedNvMemcached;

use crate::session::Session;

/// Tuning for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (use port 0 for an ephemeral port; read the
    /// actual one back from [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Accept/serve threads. `None` pins one worker per shard.
    pub workers: Option<usize>,
    /// Read timeout through which serving workers poll the shutdown
    /// flag. Bounds shutdown latency, not request latency.
    pub poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: None,
            poll: Duration::from_millis(20),
        }
    }
}

/// A running server: join handles plus the shared shutdown flag.
pub struct Server {
    cache: Arc<ShardedNvMemcached>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `cache` with the default config on an
    /// ephemeral loopback port.
    pub fn start_local(cache: Arc<ShardedNvMemcached>) -> std::io::Result<Server> {
        Self::start(cache, ServerConfig::default())
    }

    /// Binds `cfg.addr` and spawns the worker threads.
    pub fn start(cache: Arc<ShardedNvMemcached>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let n_workers = cfg.workers.unwrap_or_else(|| cache.n_shards()).max(1);
        let mut workers = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let listener = listener.try_clone()?;
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let poll = cfg.poll;
            workers.push(std::thread::spawn(move || worker_loop(&listener, &cache, &stop, poll)));
        }
        Ok(Server { cache, addr, stop, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain the workers, quiesce
    /// the cache (durability barrier over every shard pool), and hand
    /// the cache back for post-shutdown use (snapshotting, recovery
    /// drills, pool teardown).
    pub fn shutdown(self) -> Arc<ShardedNvMemcached> {
        self.stop.store(true, Ordering::SeqCst);
        // One throwaway connection per worker: a worker blocked in
        // accept wakes, sees the flag, and exits without serving.
        // Workers mid-connection exit through their read timeout and
        // never consume a wakeup; surplus wakeups die with the
        // listener clones when the workers join.
        for _ in &self.workers {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers {
            let _ = w.join();
        }
        self.cache.quiesce();
        self.cache
    }
}

fn worker_loop(
    listener: &TcpListener,
    cache: &ShardedNvMemcached,
    stop: &AtomicBool,
    poll: Duration,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                serve(stream, cache, stop, poll);
            }
            // Transient accept errors (e.g. the peer reset before the
            // handshake finished) don't take the worker down.
            Err(_) => continue,
        }
    }
}

/// Serves one connection to completion: read, execute the batch, flush
/// the batch in one write.
fn serve(stream: TcpStream, cache: &ShardedNvMemcached, stop: &AtomicBool, poll: Duration) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(poll)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let mut session = Session::new(cache);
    let mut buf = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                let keep_open = session.input(&buf[..n]);
                if !session.output().is_empty() {
                    if stream.write_all(session.output()).is_err() {
                        return;
                    }
                    session.clear_output();
                }
                if !keep_open {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

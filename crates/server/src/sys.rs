//! Minimal raw-syscall epoll shim — the readiness primitive behind the
//! event-driven server core and the multiplexed open-loop client.
//!
//! The vendor tree deliberately carries no `libc`, so this module talks
//! to the kernel directly with inline-assembly syscalls on the two
//! architectures CI and the paper's hardware cover (Linux x86_64 and
//! aarch64). Everything else — non-Linux targets, exotic arches —
//! compiles against a stub whose [`Epoll::create`] fails with
//! `Unsupported`, and the server transparently falls back to its
//! blocking thread-per-connection model ([`SUPPORTED`] is the compile-
//! time capability flag callers branch on).
//!
//! The surface is the smallest one the readiness loop needs: one
//! [`Epoll`] instance per worker, level-triggered [`add`](Epoll::add)/
//! [`modify`](Epoll::modify)/[`del`](Epoll::del) with a `u64` token per
//! fd, and a blocking [`wait`](Epoll::wait) with a millisecond timeout.
//! No edge triggering (level-triggered keeps the session state machine
//! re-entrant without starvation bookkeeping), no `EPOLLONESHOT`, no
//! signal masking.
//!
//! # Portability notes
//!
//! * `struct epoll_event` is packed on x86_64 (12 bytes) and naturally
//!   aligned everywhere else (16 bytes) — the kernel's `EPOLL_PACKED`
//!   dance, mirrored here with `cfg_attr`.
//! * aarch64 has no `epoll_wait` syscall; [`Epoll::wait`] uses
//!   `epoll_pwait` with a null sigmask, which the kernel treats
//!   identically.
//! * File descriptors are registered by raw fd; the caller keeps the
//!   owning socket alive for as long as it is registered (the server's
//!   connection table does exactly that).

#![allow(clippy::missing_safety_doc)]

use std::io;

/// Whether this build has a real epoll backend (Linux x86_64/aarch64).
/// `false` means [`Epoll::create`] always returns `Unsupported` and the
/// server uses its blocking fallback.
pub const SUPPORTED: bool =
    cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")));

/// Readiness: data to read (or a pending `accept`).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the socket's send buffer has room again.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to register it).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported; no need to register it).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Wake only one of the epoll instances watching this fd — the
/// thundering-herd guard for the shared listener. Kernels older than
/// 4.5 reject it; callers retry without the flag.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// One readiness notification: the event mask plus the caller's token.
///
/// Layout matches the kernel UAPI `struct epoll_event` exactly — packed
/// on x86_64, naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// `EPOLLIN | EPOLLOUT | …` bit set.
    pub events: u32,
    /// The token the fd was registered with.
    pub data: u64,
}

impl EpollEvent {
    /// The event mask (reads the possibly-unaligned field safely).
    #[inline]
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The registration token (reads the possibly-unaligned field
    /// safely).
    #[inline]
    pub fn token(&self) -> u64 {
        self.data
    }
}

/// An epoll instance (closed on drop).
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Creates a fresh close-on-exec epoll instance, or `Unsupported`
    /// on targets without a backend.
    pub fn create() -> io::Result<Epoll> {
        let fd = check(imp::epoll_create1(EPOLL_CLOEXEC))?;
        Ok(Epoll { fd: fd as i32 })
    }

    /// Registers `fd` for `events` (level-triggered), delivering `token`
    /// with every notification.
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered event mask of `fd`.
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Unregisters `fd`. (Closing the fd unregisters implicitly; this
    /// is for fds that outlive their interest.)
    pub fn del(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent { events, data: token };
        check(imp::epoll_ctl(self.fd, op, fd, &ev))?;
        Ok(())
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// elapses; `-1` = forever, `0` = poll), filling `events` from the
    /// front. Returns the number filled. `Interrupted` is retried
    /// internally — a signal must not be confused with "nothing ready".
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let max = events.len().min(i32::MAX as usize) as i32;
            match check(imp::epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms)) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = imp::close(self.fd);
    }
}

/// Maps a raw syscall return (negative errno convention) to `io::Result`.
fn check(ret: isize) -> io::Result<isize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::EpollEvent;
    use std::arch::asm;

    const SYS_CLOSE: usize = 3;
    const SYS_EPOLL_WAIT: usize = 232;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EPOLL_CREATE1: usize = 291;

    #[inline]
    unsafe fn syscall4(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub fn epoll_create1(flags: i32) -> isize {
        unsafe { syscall4(SYS_EPOLL_CREATE1, flags as usize, 0, 0, 0) }
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, ev: *const EpollEvent) -> isize {
        unsafe { syscall4(SYS_EPOLL_CTL, epfd as usize, op as usize, fd as usize, ev as usize) }
    }

    pub fn epoll_wait(epfd: i32, evs: *mut EpollEvent, max: i32, timeout_ms: i32) -> isize {
        unsafe {
            syscall4(SYS_EPOLL_WAIT, epfd as usize, evs as usize, max as usize, timeout_ms as usize)
        }
    }

    pub fn close(fd: i32) -> isize {
        unsafe { syscall4(SYS_CLOSE, fd as usize, 0, 0, 0) }
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod imp {
    use super::EpollEvent;
    use std::arch::asm;

    const SYS_EPOLL_CREATE1: usize = 20;
    const SYS_EPOLL_CTL: usize = 21;
    const SYS_EPOLL_PWAIT: usize = 22;
    const SYS_CLOSE: usize = 57;

    #[inline]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    pub fn epoll_create1(flags: i32) -> isize {
        unsafe { syscall6(SYS_EPOLL_CREATE1, flags as usize, 0, 0, 0, 0, 0) }
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, ev: *const EpollEvent) -> isize {
        unsafe {
            syscall6(SYS_EPOLL_CTL, epfd as usize, op as usize, fd as usize, ev as usize, 0, 0)
        }
    }

    // aarch64 never had plain epoll_wait; pwait with a null sigmask is
    // the kernel's own compatibility spelling.
    pub fn epoll_wait(epfd: i32, evs: *mut EpollEvent, max: i32, timeout_ms: i32) -> isize {
        unsafe {
            syscall6(
                SYS_EPOLL_PWAIT,
                epfd as usize,
                evs as usize,
                max as usize,
                timeout_ms as usize,
                0, // sigmask: NULL
                8, // sigsetsize (ignored for NULL, kernel-sane value)
            )
        }
    }

    pub fn close(fd: i32) -> isize {
        unsafe { syscall6(SYS_CLOSE, fd as usize, 0, 0, 0, 0, 0) }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    //! Stub backend: every call fails with `ENOSYS`, surfaced by
    //! [`super::Epoll::create`] before any fd could be registered.
    use super::EpollEvent;

    const ENOSYS: isize = -38;

    pub fn epoll_create1(_flags: i32) -> isize {
        ENOSYS
    }

    pub fn epoll_ctl(_epfd: i32, _op: i32, _fd: i32, _ev: *const EpollEvent) -> isize {
        ENOSYS
    }

    pub fn epoll_wait(_epfd: i32, _evs: *mut EpollEvent, _max: i32, _timeout_ms: i32) -> isize {
        ENOSYS
    }

    pub fn close(_fd: i32) -> isize {
        ENOSYS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn event_struct_matches_kernel_layout() {
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        } else {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        }
    }

    #[test]
    fn readiness_round_trip() {
        if !SUPPORTED {
            assert!(Epoll::create().is_err());
            return;
        }
        let ep = Epoll::create().expect("epoll_create1");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        ep.add(b.as_raw_fd(), EPOLLIN, 7).expect("ctl add");

        // Nothing ready yet: a zero-timeout wait returns empty.
        let mut evs = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut evs, 0).expect("wait"), 0);

        a.write_all(b"x").expect("write");
        let n = ep.wait(&mut evs, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(evs[0].token(), 7);
        assert!(evs[0].events() & EPOLLIN != 0);

        // Level-triggered: the byte is still unread, so it fires again.
        let n = ep.wait(&mut evs, 0).expect("wait");
        assert_eq!(n, 1, "level-triggered readiness must persist");

        let mut buf = [0u8; 8];
        let mut b_read = &b;
        assert_eq!(b_read.read(&mut buf).expect("read"), 1);
        assert_eq!(ep.wait(&mut evs, 0).expect("wait"), 0, "drained fd is quiet");
    }

    #[test]
    fn modify_and_del_change_interest() {
        if !SUPPORTED {
            return;
        }
        let ep = Epoll::create().expect("epoll_create1");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        a.write_all(b"x").expect("write");

        // Registered for OUT only: the pending readable byte is masked.
        ep.add(b.as_raw_fd(), EPOLLOUT, 1).expect("add");
        let mut evs = [EpollEvent::default(); 4];
        let n = ep.wait(&mut evs, 100).expect("wait");
        assert_eq!(n, 1);
        assert!(evs[0].events() & EPOLLOUT != 0);
        assert_eq!(evs[0].events() & EPOLLIN, 0);

        ep.modify(b.as_raw_fd(), EPOLLIN, 2).expect("mod");
        let n = ep.wait(&mut evs, 100).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(evs[0].token(), 2);
        assert!(evs[0].events() & EPOLLIN != 0);

        ep.del(b.as_raw_fd()).expect("del");
        assert_eq!(ep.wait(&mut evs, 0).expect("wait"), 0, "deleted fd is silent");
    }

    #[test]
    fn hangup_is_reported_without_registration() {
        if !SUPPORTED {
            return;
        }
        let ep = Epoll::create().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        ep.add(b.as_raw_fd(), EPOLLIN, 9).expect("add");
        drop(a);
        let mut evs = [EpollEvent::default(); 4];
        let n = ep.wait(&mut evs, 1000).expect("wait");
        assert_eq!(n, 1);
        assert!(evs[0].events() & (EPOLLHUP | EPOLLIN) != 0);
    }
}

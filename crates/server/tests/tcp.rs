//! End-to-end socket tests: a real client speaking the ASCII protocol
//! to a real server over loopback TCP.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use nvmemcached::sharded::ShardedNvMemcached;
use pmem::{LatencyModel, Mode, PoolBuilder};
use server::{Server, ServerConfig};

fn cache(shards: usize) -> Arc<ShardedNvMemcached> {
    let pools: Vec<_> = (0..shards)
        .map(|_| {
            PoolBuilder::new(16 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect();
    Arc::new(ShardedNvMemcached::create(&pools, 1024, 10_000, true).expect("pool sized"))
}

/// Reads one `\r\n`-terminated line (without the terminator).
fn read_line(r: &mut impl BufRead) -> String {
    let mut s = String::new();
    r.read_line(&mut s).expect("line");
    assert!(s.ends_with("\r\n"), "unterminated line {s:?}");
    s.truncate(s.len() - 2);
    s
}

#[test]
fn set_get_delete_round_trip() {
    let server = Server::start_local(cache(4)).expect("bind loopback");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;

    w.write_all(b"set 42 0 0 5\r\n31337\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "STORED");

    w.write_all(b"get 42 43\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "VALUE 42 0 5");
    assert_eq!(read_line(&mut reader), "31337");
    assert_eq!(read_line(&mut reader), "END");

    w.write_all(b"add 42 0 0 1\r\n9\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "NOT_STORED");
    w.write_all(b"replace 42 0 0 1\r\n9\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "STORED");

    w.write_all(b"delete 42\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "DELETED");
    w.write_all(b"delete 42\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "NOT_FOUND");

    w.write_all(b"get 42\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "END");

    let cache = server.shutdown();
    assert!(cache.is_empty());
}

#[test]
fn pipelined_burst_answers_in_order() {
    let server = Server::start_local(cache(2)).expect("bind loopback");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;

    // One write, many commands: noreply sets interleaved with gets.
    let mut burst = Vec::new();
    for k in 1..=20u64 {
        burst.extend_from_slice(
            format!("set {k} 0 0 {} noreply\r\n{}\r\n", (k * 7).to_string().len(), k * 7)
                .as_bytes(),
        );
    }
    burst.extend_from_slice(b"get 5\r\nget 20\r\nquit\r\n");
    w.write_all(&burst).unwrap();

    assert_eq!(read_line(&mut reader), "VALUE 5 0 2");
    assert_eq!(read_line(&mut reader), "35");
    assert_eq!(read_line(&mut reader), "END");
    assert_eq!(read_line(&mut reader), "VALUE 20 0 3");
    assert_eq!(read_line(&mut reader), "140");
    assert_eq!(read_line(&mut reader), "END");
    // quit: server closes without a response.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty(), "unexpected trailing bytes {rest:?}");

    server.shutdown();
}

#[test]
fn protocol_errors_keep_or_close_the_connection_appropriately() {
    let server = Server::start_local(cache(1)).expect("bind loopback");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;

    w.write_all(b"bogus\r\nget 1\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "ERROR");
    assert_eq!(read_line(&mut reader), "END");

    // Framing loss: error line, then EOF.
    w.write_all(b"set 1 0 0 2\r\n12junk\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "CLIENT_ERROR bad data chunk");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty());

    // The server keeps accepting fresh connections afterwards.
    let stream = TcpStream::connect(server.local_addr()).expect("reconnect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;
    w.write_all(b"version\r\n").unwrap();
    assert!(read_line(&mut reader).starts_with("VERSION "));

    server.shutdown();
}

#[test]
fn concurrent_connections_share_the_cache() {
    let server =
        Server::start(cache(4), ServerConfig { workers: Some(8), ..ServerConfig::default() })
            .expect("bind loopback");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut w = stream;
                for i in 0..50u64 {
                    let key = t * 1000 + i + 1;
                    let val = key * 3;
                    let data = val.to_string();
                    w.write_all(format!("set {key} 0 0 {}\r\n{data}\r\n", data.len()).as_bytes())
                        .unwrap();
                    assert_eq!(read_line(&mut reader), "STORED");
                    w.write_all(format!("get {key}\r\n").as_bytes()).unwrap();
                    assert_eq!(read_line(&mut reader), format!("VALUE {key} 0 {}", data.len()));
                    assert_eq!(read_line(&mut reader), data);
                    assert_eq!(read_line(&mut reader), "END");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let cache = server.shutdown();
    assert_eq!(cache.len(), 8 * 50);
    // Tallies flushed by the dropped per-connection sessions.
    assert_eq!(cache.shard_requests().iter().sum::<u64>(), 8 * 50 * 2);
}

#[test]
fn server_keeps_serving_during_live_grow() {
    // Small bucket arrays so the grow has real migration work to do
    // while the clients hammer it.
    let pools: Vec<_> = (0..2)
        .map(|_| {
            PoolBuilder::new(32 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect();
    let cache =
        Arc::new(ShardedNvMemcached::create(&pools, 64, 1_000_000, true).expect("pool sized"));
    let server =
        Server::start(Arc::clone(&cache), ServerConfig { workers: Some(2), ..Default::default() })
            .expect("bind loopback");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;

    for k in 1..=400u64 {
        let data = (k * 7).to_string();
        w.write_all(format!("set {k} 0 0 {}\r\n{data}\r\n", data.len()).as_bytes()).unwrap();
        assert_eq!(read_line(&mut reader), "STORED");
    }

    // Grow every shard 4x from a direct (in-process) connection while
    // the TCP client keeps reading and writing mid-migration.
    let grower = std::thread::spawn({
        let cache = Arc::clone(&cache);
        move || {
            let mut ctx = cache.register();
            assert_eq!(cache.grow(&mut ctx, 4).expect("pool sized"), 2, "both shards started");
            cache.finish_resize(&mut ctx).expect("pool sized");
            // No drain_all here: clients are live, reclamation stays
            // deferred until their epochs pass.
        }
    });
    for k in 1..=400u64 {
        let data = (k * 7).to_string();
        w.write_all(format!("get {k}\r\n").as_bytes()).unwrap();
        assert_eq!(read_line(&mut reader), format!("VALUE {k} 0 {}", data.len()));
        assert_eq!(read_line(&mut reader), data);
        assert_eq!(read_line(&mut reader), "END");
    }
    for k in 401..=500u64 {
        let data = (k * 7).to_string();
        w.write_all(format!("set {k} 0 0 {}\r\n{data}\r\n", data.len()).as_bytes()).unwrap();
        assert_eq!(read_line(&mut reader), "STORED");
    }
    grower.join().expect("grower thread");

    // Post-grow: everything is still there, over TCP.
    for k in 1..=500u64 {
        let data = (k * 7).to_string();
        w.write_all(format!("get {k}\r\n").as_bytes()).unwrap();
        assert_eq!(read_line(&mut reader), format!("VALUE {k} 0 {}", data.len()));
        assert_eq!(read_line(&mut reader), data);
        assert_eq!(read_line(&mut reader), "END");
    }
    drop((w, reader));
    let cache = server.shutdown();
    assert!(!cache.resize_in_flight());
    for shard in cache.shards().iter() {
        assert_eq!(shard.capacity_hint(), 256, "4x grow from 64 buckets");
    }
    assert_eq!(cache.len(), 500);
}

#[test]
fn server_keeps_serving_during_live_reshard() {
    let pools: Vec<_> = (0..2)
        .map(|_| {
            PoolBuilder::new(32 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect();
    let cache =
        Arc::new(ShardedNvMemcached::create(&pools, 64, 1_000_000, true).expect("pool sized"));
    let server =
        Server::start(Arc::clone(&cache), ServerConfig { workers: Some(2), ..Default::default() })
            .expect("bind loopback");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;

    for k in 1..=400u64 {
        let data = (k * 7).to_string();
        w.write_all(format!("set {k} 0 0 {}\r\n{data}\r\n", data.len()).as_bytes()).unwrap();
        assert_eq!(read_line(&mut reader), "STORED");
    }

    // Start a live 2→4 reshard from the admin side; the TCP client
    // keeps reading, writing and polling `stats reshard` while the
    // migration is stepped along between its requests.
    let new_pools: Vec<_> = (0..4)
        .map(|_| {
            PoolBuilder::new(32 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect();
    cache.reshard_start(&new_pools, 64).expect("fresh target pools");

    w.write_all(b"stats reshard\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "STAT topology_version 1");
    assert_eq!(read_line(&mut reader), "STAT shards 2");
    assert_eq!(read_line(&mut reader), "STAT router hash");
    assert_eq!(read_line(&mut reader), "STAT reshard_in_flight 1");
    assert_eq!(read_line(&mut reader), "STAT reshard_from 2");
    assert_eq!(read_line(&mut reader), "STAT reshard_to 4");
    assert_eq!(read_line(&mut reader), "STAT reshard_cursor 0");
    assert_eq!(read_line(&mut reader), "STAT reshard_target_version 2");
    assert_eq!(read_line(&mut reader), "END");

    // Serve traffic with the migration mid-flight: one drained shard.
    assert!(!cache.reshard_step().expect("pool sized"), "first of two shards drained");
    for k in 1..=400u64 {
        let data = (k * 7).to_string();
        w.write_all(format!("get {k}\r\n").as_bytes()).unwrap();
        assert_eq!(read_line(&mut reader), format!("VALUE {k} 0 {}", data.len()));
        assert_eq!(read_line(&mut reader), data);
        assert_eq!(read_line(&mut reader), "END");
    }
    for k in 401..=500u64 {
        let data = (k * 7).to_string();
        w.write_all(format!("set {k} 0 0 {}\r\n{data}\r\n", data.len()).as_bytes()).unwrap();
        assert_eq!(read_line(&mut reader), "STORED");
    }
    while !cache.reshard_step().expect("pool sized") {}

    w.write_all(b"stats reshard\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "STAT topology_version 2");
    assert_eq!(read_line(&mut reader), "STAT shards 4");
    assert_eq!(read_line(&mut reader), "STAT router hash");
    assert_eq!(read_line(&mut reader), "STAT reshard_in_flight 0");
    assert_eq!(read_line(&mut reader), "END");

    // Post-reshard: everything is still there, over TCP.
    for k in 1..=500u64 {
        let data = (k * 7).to_string();
        w.write_all(format!("get {k}\r\n").as_bytes()).unwrap();
        assert_eq!(read_line(&mut reader), format!("VALUE {k} 0 {}", data.len()));
        assert_eq!(read_line(&mut reader), data);
        assert_eq!(read_line(&mut reader), "END");
    }
    drop((w, reader));
    let cache = server.shutdown();
    assert_eq!(cache.n_shards(), 4);
    assert_eq!(cache.len(), 500);
    for (i, shard) in cache.shards().iter().enumerate() {
        for (k, _) in shard.snapshot() {
            assert_eq!(cache.shard_of(k), i, "key {k} in wrong shard after live reshard");
        }
    }
}

#[test]
fn stats_reshard_arguments_are_validated() {
    let server = Server::start_local(cache(2)).expect("bind loopback");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;
    w.write_all(b"stats bogus\r\nstats reshard\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "ERROR");
    assert_eq!(read_line(&mut reader), "STAT topology_version 1");
    assert_eq!(read_line(&mut reader), "STAT shards 2");
    assert_eq!(read_line(&mut reader), "STAT router hash");
    assert_eq!(read_line(&mut reader), "STAT reshard_in_flight 0");
    assert_eq!(read_line(&mut reader), "END");
    server.shutdown();
}

#[test]
fn stats_report_shard_topology() {
    let server = Server::start_local(cache(3)).expect("bind loopback");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;
    w.write_all(b"stats\r\n").unwrap();
    assert_eq!(read_line(&mut reader), "STAT shards 3");
    assert_eq!(read_line(&mut reader), "STAT curr_items 0");
    assert_eq!(read_line(&mut reader), "STAT curr_connections 1");
    assert_eq!(read_line(&mut reader), "STAT total_connections 1");
    // The request itself ("stats\r\n", 7 bytes) was read before the
    // counters were rendered.
    assert_eq!(read_line(&mut reader), "STAT bytes_read 7");
    assert!(read_line(&mut reader).starts_with("STAT bytes_written "));
    assert_eq!(read_line(&mut reader), "END");
    server.shutdown();
}

/// Reads `stats` over `r`/`w` and returns the named counter's value.
fn stat_counter(w: &mut TcpStream, r: &mut impl BufRead, name: &str) -> u64 {
    w.write_all(b"stats\r\n").unwrap();
    let mut found = None;
    loop {
        let line = read_line(r);
        if line == "END" {
            return found.unwrap_or_else(|| panic!("stats response lacked {name}"));
        }
        if let Some(v) = line.strip_prefix(&format!("STAT {name} ")) {
            found = Some(v.parse().expect("numeric counter"));
        }
    }
}

#[test]
fn stats_counters_move_with_traffic() {
    let server = Server::start_local(cache(2)).expect("bind loopback");
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream;

    let conns0 = stat_counter(&mut w, &mut reader, "curr_connections");
    let accepts0 = stat_counter(&mut w, &mut reader, "total_connections");
    let read0 = stat_counter(&mut w, &mut reader, "bytes_read");
    let written0 = stat_counter(&mut w, &mut reader, "bytes_written");
    assert_eq!(conns0, 1);
    assert_eq!(accepts0, 1);
    assert!(read0 > 0 && written0 > 0);

    // A second connection does a round trip and disconnects: accepts
    // advance past curr_connections, bytes advance on both directions.
    {
        let s2 = TcpStream::connect(addr).expect("connect");
        let mut r2 = BufReader::new(s2.try_clone().expect("clone"));
        let mut w2 = s2;
        w2.write_all(b"set 7 0 0 2\r\n77\r\n").unwrap();
        assert_eq!(read_line(&mut r2), "STORED");
        w2.write_all(b"quit\r\n").unwrap();
        let mut rest = Vec::new();
        r2.read_to_end(&mut rest).expect("eof");
    }

    // The second connection's teardown is asynchronous to this client;
    // poll until the server observes the close.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while stat_counter(&mut w, &mut reader, "curr_connections") != 1 {
        assert!(std::time::Instant::now() < deadline, "close never observed");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(stat_counter(&mut w, &mut reader, "total_connections"), 2);
    assert!(stat_counter(&mut w, &mut reader, "bytes_read") > read0);
    assert!(stat_counter(&mut w, &mut reader, "bytes_written") > written0);

    let cache = server.shutdown();
    assert_eq!(cache.len(), 1);
}

/// The blocking fallback serves the identical protocol (one worker per
/// connection) when the event loop is disabled.
#[test]
fn blocking_fallback_serves_identically() {
    let server = Server::start(
        cache(2),
        ServerConfig { workers: Some(3), event_loop: false, ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut w = stream;
                for i in 0..20u64 {
                    let key = t * 100 + i + 1;
                    let data = (key * 3).to_string();
                    w.write_all(format!("set {key} 0 0 {}\r\n{data}\r\n", data.len()).as_bytes())
                        .unwrap();
                    assert_eq!(read_line(&mut reader), "STORED");
                    w.write_all(format!("get {key}\r\n").as_bytes()).unwrap();
                    assert_eq!(read_line(&mut reader), format!("VALUE {key} 0 {}", data.len()));
                    assert_eq!(read_line(&mut reader), data);
                    assert_eq!(read_line(&mut reader), "END");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let cache = server.shutdown();
    assert_eq!(cache.len(), 3 * 20);
}

/// Backpressure end-to-end: a client that pipelines a response volume
/// far beyond the socket buffers *without reading* must neither wedge
/// the worker (other connections stay live) nor lose bytes once it
/// finally drains. write_cap forces the partial-write/EPOLLOUT path on
/// every flush.
#[test]
fn slow_client_backpressure_neither_wedges_nor_drops() {
    let server = Server::start(
        cache(2),
        ServerConfig { workers: Some(1), write_cap: Some(1024), ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let slow = TcpStream::connect(addr).expect("connect");
    let mut slow_w = slow.try_clone().expect("clone");
    // Store one fat-ish value, then pipeline thousands of gets for it
    // in one burst. The responses (~36 bytes each) total ~1.4 MB —
    // far beyond socket buffering — while this client reads nothing.
    let mut burst = b"set 1 0 0 18\r\n123456789012345678\r\n".to_vec();
    const GETS: usize = 40_000;
    for _ in 0..GETS {
        burst.extend_from_slice(b"get 1\r\n");
    }
    let writer = std::thread::spawn(move || slow_w.write_all(&burst).map(|()| slow_w));

    // Same (sole) worker: a second connection keeps getting served
    // while the slow one is parked on backpressure.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let live = TcpStream::connect(addr).expect("connect");
    let mut live_r = BufReader::new(live.try_clone().expect("clone"));
    let mut live_w = live;
    for _ in 0..5 {
        live_w.write_all(b"version\r\n").unwrap();
        assert!(read_line(&mut live_r).starts_with("VERSION "));
    }

    // Now drain the slow client completely: every response must arrive
    // intact and in order.
    let mut slow_r = BufReader::new(slow);
    assert_eq!(read_line(&mut slow_r), "STORED");
    for i in 0..GETS {
        assert_eq!(read_line(&mut slow_r), "VALUE 1 0 18", "get #{i}");
        assert_eq!(read_line(&mut slow_r), "123456789012345678", "get #{i}");
        assert_eq!(read_line(&mut slow_r), "END", "get #{i}");
    }
    let slow_w = writer.join().expect("writer thread").expect("burst written");
    drop((slow_w, slow_r));
    server.shutdown();
}

//! Property test: the session's responses are a function of the
//! *cumulative* byte stream, never of how the transport fragmented it.
//!
//! Real TCP delivers a pipelined burst in arbitrary pieces — a command
//! line split mid-token, a data block split from its `\r\n`, ten
//! commands in one segment. The parser promises all of those are
//! invisible; this test pins the promise by generating random command
//! sequences (valid *and* malformed, including framing-fatal ones),
//! feeding them whole to one session and in random fragments to
//! another over identically-created caches, and asserting the byte
//! output, open/closed state, and resulting cache contents all match.

use nvmemcached::sharded::ShardedNvMemcached;
use pmem::{LatencyModel, Mode, PoolBuilder};
use proptest::prelude::*;
use server::Session;

fn cache() -> ShardedNvMemcached {
    let pools: Vec<_> = (0..2)
        .map(|_| {
            PoolBuilder::new(16 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect();
    ShardedNvMemcached::create(&pools, 256, 10_000, true).expect("pool sized")
}

/// One syntactic unit of client traffic, picked by `sel`. Weighted (by
/// selector range) toward valid store/retrieve traffic, with a tail of
/// malformed-but-recoverable lines and framing-fatal chunks (bad data
/// block, short data block that absorbs whatever bytes follow, `quit`).
fn render_chunk(sel: u8, k: u64, v: u64, nr: bool, alt: bool) -> Vec<u8> {
    let key = k % 63 + 1;
    let noreply = if nr { " noreply" } else { "" };
    let data = v.to_string();
    match sel % 16 {
        // Valid stores (5/16).
        0..=4 => format!("set {key} 0 0 {}{noreply}\r\n{data}\r\n", data.len()).into_bytes(),
        5 | 6 => {
            let verb = if alt { "add" } else { "replace" };
            format!("{verb} {key} 0 0 {}{noreply}\r\n{data}\r\n", data.len()).into_bytes()
        }
        // Retrievals (3/16), single- and multi-key.
        7 | 8 => format!("get {key}\r\n").into_bytes(),
        9 => format!("gets {key} {} {}\r\n", v % 63 + 1, key ^ 1 | 1).into_bytes(),
        10 | 11 => format!("delete {key}{noreply}\r\n").into_bytes(),
        12 => (if alt { &b"stats\r\n"[..] } else { &b"version\r\n"[..] }).to_vec(),
        // Malformed, framing intact: the session answers an error line
        // (or swallows it under noreply) and keeps going.
        13 | 14 => match v % 6 {
            0 => b"bogus\r\n".to_vec(),
            1 => b"\r\n".to_vec(),
            2 => b"get\r\n".to_vec(),
            3 => b"set 1 0 0\r\n".to_vec(),
            // Bad key on a well-formed store: the data block is
            // swallowed, the error deferred past it.
            4 => format!("set 0 0 0 {}\r\n{data}\r\n", data.len()).into_bytes(),
            _ => format!("set abc 0 0 {} noreply\r\n{data}\r\n", data.len()).into_bytes(),
        },
        // Framing lost (or deliberate close): everything after this
        // chunk — however it was fragmented — must be ignored
        // identically by both sessions.
        _ => match v % 3 {
            0 => b"set 1 0 0 2\r\n123456\r\n".to_vec(),
            // Declares 9 data bytes but supplies 2: the block absorbs
            // the following chunk's bytes, wherever the split fell.
            1 => b"set 2 0 0 9\r\n42\r\n".to_vec(),
            _ => b"quit\r\n".to_vec(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn fragmentation_never_changes_responses(
        chunks in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()),
            1..12,
        ),
        cuts in proptest::collection::vec(any::<usize>(), 0..10),
    ) {
        let stream: Vec<u8> = chunks
            .iter()
            .flat_map(|&(sel, k, v, nr, alt)| render_chunk(sel, k, v, nr, alt))
            .collect();

        // Reference: the whole pipelined burst in one read.
        let cache_whole = cache();
        let mut ctx_whole = cache_whole.register();
        let mut whole = Session::new(&cache_whole);
        whole.input(&stream, &mut ctx_whole);

        // Same bytes, arbitrary fragmentation (duplicate and boundary
        // cut points collapse to empty fragments, which are skipped).
        let cache_frag = cache();
        let mut ctx_frag = cache_frag.register();
        let mut frag = Session::new(&cache_frag);
        let mut pos: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
        pos.push(stream.len());
        pos.sort_unstable();
        let mut prev = 0;
        for p in pos {
            if p > prev {
                frag.input(&stream[prev..p], &mut ctx_frag);
                prev = p;
            }
        }

        prop_assert_eq!(whole.output(), frag.output(), "responses diverged");
        prop_assert_eq!(whole.is_open(), frag.is_open(), "open/closed state diverged");
        prop_assert_eq!(cache_whole.len(), cache_frag.len(), "cache contents diverged");
    }
}

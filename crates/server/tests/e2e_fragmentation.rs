//! Property test, end-to-end edition: the *event-driven server's*
//! responses over a real socket are a function of the cumulative byte
//! stream, never of how the bytes were fragmented in flight.
//!
//! The sibling test (`proptest_stream.rs`) pins this for the `Session`
//! state machine in isolation; here the whole readiness loop is in the
//! path — non-blocking reads chopped to 3 bytes by `read_cap`, flushes
//! chopped to 5 bytes by `write_cap` (so every response takes the
//! partial-write/`EPOLLOUT` backpressure path), client writes split at
//! random cut points. The reference output comes from driving a
//! `Session` directly over an identically-created cache.
//!
//! Traffic is valid-plus-recoverable-malformed only, and never `stats`:
//! the live `bytes_read`/`bytes_written` counters in a `stats` response
//! legitimately depend on transport timing, and a framing-fatal chunk
//! makes the server close mid-stream, racing the client's remaining
//! writes against a reset. `quit` terminates every stream so the
//! server closes after draining and the client can read to EOF.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use nvmemcached::sharded::ShardedNvMemcached;
use pmem::{LatencyModel, Mode, PoolBuilder};
use proptest::prelude::*;
use server::{Server, ServerConfig, Session};

fn cache() -> ShardedNvMemcached {
    let pools: Vec<_> = (0..2)
        .map(|_| {
            PoolBuilder::new(16 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect();
    ShardedNvMemcached::create(&pools, 256, 10_000, true).expect("pool sized")
}

/// One syntactic unit of client traffic: weighted toward valid
/// store/retrieve commands, with a tail of malformed-but-recoverable
/// lines. No `stats`, nothing framing-fatal (see module docs).
fn render_chunk(sel: u8, k: u64, v: u64, nr: bool, alt: bool) -> Vec<u8> {
    let key = k % 63 + 1;
    let noreply = if nr { " noreply" } else { "" };
    let data = v.to_string();
    match sel % 13 {
        0..=4 => format!("set {key} 0 0 {}{noreply}\r\n{data}\r\n", data.len()).into_bytes(),
        5 | 6 => {
            let verb = if alt { "add" } else { "replace" };
            format!("{verb} {key} 0 0 {}{noreply}\r\n{data}\r\n", data.len()).into_bytes()
        }
        7 | 8 => format!("get {key}\r\n").into_bytes(),
        9 => format!("gets {key} {} {}\r\n", v % 63 + 1, key ^ 1 | 1).into_bytes(),
        10 => format!("delete {key}{noreply}\r\n").into_bytes(),
        11 => b"version\r\n".to_vec(),
        _ => match v % 4 {
            0 => b"bogus\r\n".to_vec(),
            1 => b"\r\n".to_vec(),
            2 => b"get\r\n".to_vec(),
            _ => format!("set 0 0 0 {}\r\n{data}\r\n", data.len()).into_bytes(),
        },
    }
}

proptest! {
    // Each case boots a real server; keep the case count socket-sized.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn wire_fragmentation_never_changes_responses(
        chunks in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()),
            1..10,
        ),
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let mut stream_bytes: Vec<u8> = chunks
            .iter()
            .flat_map(|&(sel, k, v, nr, alt)| render_chunk(sel, k, v, nr, alt))
            .collect();
        stream_bytes.extend_from_slice(b"quit\r\n");

        // Reference: the session alone, whole burst in one call.
        let cache_ref = cache();
        let mut ctx = cache_ref.register();
        let mut reference = Session::new(&cache_ref);
        reference.input(&stream_bytes, &mut ctx);

        // Wire: the event-driven server with reads capped at 3 bytes
        // and writes at 5, client writes split at random cut points.
        let server = Server::start(
            Arc::new(cache()),
            ServerConfig { read_cap: Some(3), write_cap: Some(5), ..ServerConfig::default() },
        )
        .expect("bind loopback");
        let sock = TcpStream::connect(server.local_addr()).expect("connect");
        sock.set_nodelay(true).expect("nodelay");
        let mut w = sock.try_clone().expect("clone");

        let mut pos: Vec<usize> = cuts.iter().map(|&c| c % (stream_bytes.len() + 1)).collect();
        pos.push(stream_bytes.len());
        pos.sort_unstable();
        let reader = std::thread::spawn(move || {
            let mut got = Vec::new();
            let mut sock = sock;
            sock.read_to_end(&mut got).map(|_| got)
        });
        let mut prev = 0;
        for p in pos {
            if p > prev {
                w.write_all(&stream_bytes[prev..p]).expect("client write");
                prev = p;
            }
        }
        let got = reader.join().expect("reader thread").expect("read to EOF");
        let cache_wire = server.shutdown();

        prop_assert_eq!(reference.output(), &got[..], "wire responses diverged from session");
        prop_assert!(!reference.is_open(), "quit closes the reference too");
        prop_assert_eq!(cache_ref.len(), cache_wire.len(), "cache contents diverged");
    }
}
